// HTML dashboard renderer behind refit-report (see report.hpp): section
// builders parse each artifact with tools/common/json and emit inline
// SVG charts; everything degrades to a note when a payload is absent.
#include "report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace refit::tools {

namespace {

// ---------------------------------------------------------------------------
// Text plumbing.

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Payloads go into <script type="application/json"> blocks verbatim
/// except that "</" must not appear (it would close the script element).
std::string script_embed_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<' && i + 1 < s.size() && s[i + 1] == '/') {
      out += "<\\/";
      ++i;
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[48];
  if (v == 0.0) return "0";
  const double a = std::abs(v);
  if (a >= 1e6 || a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else if (v == std::floor(v) && a < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// SVG chart builders. Shared geometry: one y axis, horizontal gridlines,
// recessive axis text in the muted ink token, data in the palette slots.

constexpr int kChartW = 680;
constexpr int kChartH = 260;
constexpr int kMarginL = 64;
constexpr int kMarginR = 110;  // room for direct series labels
constexpr int kMarginT = 16;
constexpr int kMarginB = 34;

struct Series {
  std::string label;
  std::string color;  // CSS var reference, e.g. "var(--s1)"
  std::vector<std::pair<double, double>> pts;  // (x, y)
};

/// Round a raw max up to a tidy tick ceiling (1/2/5 ladder).
double nice_ceil(double v) {
  if (v <= 0.0) return 1.0;
  const double mag = std::pow(10.0, std::floor(std::log10(v)));
  for (const double m : {1.0, 2.0, 5.0, 10.0}) {
    if (v <= m * mag * (1.0 + 1e-12)) return m * mag;
  }
  return 10.0 * mag;
}

void svg_open(std::string& out, int w, int h) {
  out += "<svg viewBox=\"0 0 " + std::to_string(w) + " " +
         std::to_string(h) + "\" role=\"img\" class=\"chart\">\n";
}

void svg_text(std::string& out, double x, double y, const std::string& cls,
              const std::string& anchor, const std::string& text) {
  out += "  <text x=\"" + fmt_num(x) + "\" y=\"" + fmt_num(y) +
         "\" class=\"" + cls + "\" text-anchor=\"" + anchor + "\">" +
         html_escape(text) + "</text>\n";
}

/// Multi-series line chart. Y starts at zero (rates and accuracies here
/// are all ratios); X spans the data. Direct labels at the line ends.
std::string line_chart(const std::vector<Series>& series,
                       const std::string& x_label, double y_max_hint = 0.0) {
  std::string out;
  double xmin = 0.0, xmax = 1.0, ymax = y_max_hint;
  bool have_x = false;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.pts) {
      if (!have_x) {
        xmin = xmax = x;
        have_x = true;
      }
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymax = std::max(ymax, y);
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  ymax = nice_ceil(ymax);
  const double plot_w = kChartW - kMarginL - kMarginR;
  const double plot_h = kChartH - kMarginT - kMarginB;
  const auto px = [&](double x) {
    return kMarginL + (x - xmin) / (xmax - xmin) * plot_w;
  };
  const auto py = [&](double y) {
    return kMarginT + (1.0 - y / ymax) * plot_h;
  };

  svg_open(out, kChartW, kChartH);
  for (int t = 0; t <= 4; ++t) {  // horizontal gridlines + y ticks
    const double yv = ymax * t / 4.0;
    const double yy = py(yv);
    out += "  <line x1=\"" + fmt_num(kMarginL) + "\" y1=\"" + fmt_num(yy) +
           "\" x2=\"" + fmt_num(kMarginL + plot_w) + "\" y2=\"" +
           fmt_num(yy) + "\" class=\"grid\"/>\n";
    svg_text(out, kMarginL - 8, yy + 4, "tick", "end", fmt_num(yv));
  }
  for (int t = 0; t <= 4; ++t) {  // x ticks
    const double xv = xmin + (xmax - xmin) * t / 4.0;
    svg_text(out, px(xv), kMarginT + plot_h + 18, "tick", "middle",
             fmt_num(xv));
  }
  svg_text(out, kMarginL + plot_w / 2.0, kChartH - 4, "axis", "middle",
           x_label);

  for (const Series& s : series) {
    if (s.pts.empty()) continue;
    std::string points;
    for (const auto& [x, y] : s.pts) {
      points += fmt_num(px(x)) + "," + fmt_num(py(y)) + " ";
    }
    out += "  <polyline points=\"" + points +
           "\" fill=\"none\" stroke=\"" + s.color +
           "\" stroke-width=\"2\" stroke-linejoin=\"round\"/>\n";
    // Hover targets: an invisible fat circle carrying the native tooltip.
    for (const auto& [x, y] : s.pts) {
      out += "  <circle cx=\"" + fmt_num(px(x)) + "\" cy=\"" +
             fmt_num(py(y)) + "\" r=\"7\" fill=\"transparent\"><title>" +
             html_escape(s.label) + " @ " + fmt_num(x) + ": " + fmt_num(y) +
             "</title></circle>\n";
    }
    const auto& [lx, ly] = s.pts.back();
    out += "  <text x=\"" + fmt_num(px(lx) + 8) + "\" y=\"" +
           fmt_num(py(ly) + 4) + "\" class=\"slabel\" fill=\"" + s.color +
           "\">" + html_escape(s.label) + "</text>\n";
  }
  out += "</svg>\n";
  return out;
}

/// Horizontal bar chart (one hue): category labels left, values at the
/// bar ends in ink, 2px gaps between bars via row spacing.
std::string hbar_chart(const std::vector<std::pair<std::string, double>>& rows,
                       const std::string& unit) {
  std::string out;
  double vmax = 0.0;
  for (const auto& [_, v] : rows) vmax = std::max(vmax, v);
  vmax = nice_ceil(vmax);
  const int label_w = 170;
  const int row_h = 26;
  const int bar_h = 16;
  const int h = kMarginT + static_cast<int>(rows.size()) * row_h + 8;
  const double plot_w = kChartW - label_w - 90;

  svg_open(out, kChartW, h);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double y = kMarginT + static_cast<double>(i) * row_h;
    const double w = rows[i].second / vmax * plot_w;
    svg_text(out, label_w - 8, y + bar_h - 3, "tick", "end", rows[i].first);
    out += "  <rect x=\"" + std::to_string(label_w) + "\" y=\"" +
           fmt_num(y) + "\" width=\"" + fmt_num(std::max(w, 1.0)) +
           "\" height=\"" + std::to_string(bar_h) +
           "\" rx=\"4\" fill=\"var(--s1)\"><title>" +
           html_escape(rows[i].first) + ": " + fmt_num(rows[i].second) + " " +
           unit + "</title></rect>\n";
    svg_text(out, label_w + std::max(w, 1.0) + 6, y + bar_h - 3, "vlabel",
             "start", fmt_num(rows[i].second) + " " + unit);
  }
  out += "</svg>\n";
  return out;
}

/// Vertical histogram bars from bucket bounds + counts (one hue,
/// 2px surface gap between bars).
std::string histogram_chart(const std::vector<double>& bounds,
                            const std::vector<double>& buckets,
                            const std::string& x_label) {
  std::string out;
  double vmax = 0.0;
  for (const double b : buckets) vmax = std::max(vmax, b);
  vmax = nice_ceil(vmax);
  const double plot_w = kChartW - kMarginL - 24;
  const double plot_h = kChartH - kMarginT - kMarginB;
  const double slot = plot_w / static_cast<double>(buckets.size());

  svg_open(out, kChartW, kChartH);
  for (int t = 0; t <= 4; ++t) {
    const double yv = vmax * t / 4.0;
    const double yy = kMarginT + (1.0 - yv / vmax) * plot_h;
    out += "  <line x1=\"" + fmt_num(kMarginL) + "\" y1=\"" + fmt_num(yy) +
           "\" x2=\"" + fmt_num(kMarginL + plot_w) + "\" y2=\"" +
           fmt_num(yy) + "\" class=\"grid\"/>\n";
    svg_text(out, kMarginL - 8, yy + 4, "tick", "end", fmt_num(yv));
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double h = buckets[i] / vmax * plot_h;
    const double x = kMarginL + static_cast<double>(i) * slot + 1.0;
    const double y = kMarginT + plot_h - h;
    std::string label(i < bounds.size() ? "≤" : ">");
    label += fmt_num(i < bounds.size()
                         ? bounds[i]
                         : (bounds.empty() ? 0.0 : bounds.back()));
    out += "  <rect x=\"" + fmt_num(x) + "\" y=\"" + fmt_num(y) +
           "\" width=\"" + fmt_num(slot - 2.0) + "\" height=\"" +
           fmt_num(std::max(h, buckets[i] > 0 ? 1.0 : 0.0)) +
           "\" rx=\"4\" fill=\"var(--s1)\"><title>" + label + ": " +
           fmt_num(buckets[i]) + " cells</title></rect>\n";
    svg_text(out, x + (slot - 2.0) / 2.0, kMarginT + plot_h + 18, "tick",
             "middle", label);
  }
  svg_text(out, kMarginL + plot_w / 2.0, kChartH - 4, "axis", "middle",
           x_label);
  out += "</svg>\n";
  return out;
}

std::string legend(const std::vector<Series>& series) {
  std::string out = "<div class=\"legend\">";
  for (const Series& s : series) {
    out += "<span class=\"key\"><span class=\"swatch\" style=\"background:" +
           s.color + "\"></span>" + html_escape(s.label) + "</span>";
  }
  out += "</div>\n";
  return out;
}

std::string note(const std::string& text) {
  return "<p class=\"note\">" + html_escape(text) + "</p>\n";
}

// ---------------------------------------------------------------------------
// Section builders — each degrades to a note when its payload is absent
// or unparseable.

std::string phase_timing_section(const std::string& trace_json) {
  std::string out = "<section><h2>Per-phase timing</h2>\n";
  if (trace_json.empty()) return out + note("trace not captured") + "</section>\n";
  std::string err;
  const auto doc = json_parse(trace_json, &err);
  const JsonValue* events = doc ? doc->find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    return out + note("could not parse trace: " + err) + "</section>\n";
  }
  // Sum wall time per span name; drop the whole-run umbrella span so the
  // bars show phases, not the total.
  std::map<std::string, double> totals;
  std::map<std::string, std::size_t> counts;
  for (const JsonValue& ev : events->items) {
    const JsonValue* name = ev.find("name");
    const JsonValue* dur = ev.find("dur");
    if (name == nullptr || dur == nullptr) continue;
    totals[name->raw] += dur->number / 1000.0;  // us -> ms
    ++counts[name->raw];
  }
  totals.erase("engine.run");
  if (totals.empty()) return out + note("no spans in trace") + "</section>\n";
  std::vector<std::pair<std::string, double>> rows(totals.begin(),
                                                   totals.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (rows.size() > 12) rows.resize(12);
  for (auto& [name, total] : rows) {
    name += " (" + std::to_string(counts[name]) + "x)";
  }
  return out + hbar_chart(rows, "ms") + "</section>\n";
}

std::string detection_quality_section(const std::string& events_jsonl) {
  std::string out = "<section><h2>Detection quality over rounds</h2>\n";
  if (events_jsonl.empty()) {
    return out + note("event log not captured") + "</section>\n";
  }
  const auto rows = jsonl_parse(events_jsonl);
  Series hard_p{"hard precision", "var(--s1)", {}};
  Series hard_r{"hard recall", "var(--s2)", {}};
  Series soft_p{"soft precision", "var(--s3)", {}};
  Series soft_r{"soft recall", "var(--s4)", {}};
  for (const JsonValue& ev : rows) {
    const JsonValue* kind = ev.find("kind");
    const JsonValue* fields = ev.find("fields");
    if (kind == nullptr || fields == nullptr) continue;
    const JsonValue* it = fields->find("iteration");
    if (it == nullptr) continue;
    const auto push = [&](Series& s, const char* key) {
      if (const JsonValue* v = fields->find(key)) {
        s.pts.emplace_back(it->number, v->number);
      }
    };
    if (kind->raw == "fault-detected") {
      push(hard_p, "precision");
      push(hard_r, "recall");
    } else if (kind->raw == "soft-classified") {
      push(soft_p, "soft_precision");
      push(soft_r, "soft_recall");
    }
  }
  std::vector<Series> series;
  for (Series* s : {&hard_p, &hard_r, &soft_p, &soft_r}) {
    if (!s->pts.empty()) series.push_back(std::move(*s));
  }
  if (series.empty()) {
    return out + note("no detection events in log") + "</section>\n";
  }
  return out + legend(series) + line_chart(series, "iteration", 1.0) +
         "</section>\n";
}

std::string accuracy_section(const std::string& timeseries_jsonl) {
  std::string out = "<section><h2>Evaluation accuracy</h2>\n";
  if (timeseries_jsonl.empty()) {
    return out + note("timeseries not captured") + "</section>\n";
  }
  Series acc{"eval accuracy", "var(--s1)", {}};
  for (const JsonValue& sample : jsonl_parse(timeseries_jsonl)) {
    const JsonValue* it = sample.find("iteration");
    const JsonValue* metrics = sample.find("metrics");
    const JsonValue* m =
        metrics != nullptr ? metrics->find("engine.eval_accuracy") : nullptr;
    const JsonValue* v = m != nullptr ? m->find("value") : nullptr;
    if (it != nullptr && v != nullptr) {
      acc.pts.emplace_back(it->number, v->number);
    }
  }
  if (acc.pts.empty()) {
    return out + note("engine.eval_accuracy not present in timeseries") +
           "</section>\n";
  }
  return out + line_chart({acc}, "iteration", 1.0) + "</section>\n";
}

std::string wear_section(const std::string& metrics_json,
                         std::string* metrics_table_out) {
  std::string out = "<section><h2>Cell wear</h2>\n";
  std::string table =
      "<section><h2>Metrics catalogue</h2>\n<table><thead><tr>"
      "<th>name</th><th>type</th><th>unit</th><th>value</th>"
      "<th>count</th><th>p50</th><th>p95</th><th>p99</th></tr></thead>"
      "<tbody>\n";
  if (metrics_json.empty()) {
    *metrics_table_out = "<section><h2>Metrics catalogue</h2>\n" +
                         note("metrics not captured") + "</section>\n";
    return out + note("metrics not captured") + "</section>\n";
  }
  std::string err;
  const auto doc = json_parse(metrics_json, &err);
  const JsonValue* metrics = doc ? doc->find("metrics") : nullptr;
  if (metrics == nullptr || !metrics->is_array()) {
    *metrics_table_out = "<section><h2>Metrics catalogue</h2>\n" +
                         note("could not parse metrics: " + err) +
                         "</section>\n";
    return out + note("could not parse metrics: " + err) + "</section>\n";
  }
  std::string wear_chart = note("store.wear_writes not present in metrics");
  for (const JsonValue& m : metrics->items) {
    const JsonValue* name = m.find("name");
    if (name == nullptr) continue;
    const auto cell = [&](const char* key) {
      const JsonValue* v = m.find(key);
      return v != nullptr ? html_escape(v->display()) : std::string("");
    };
    table += "<tr><td>" + html_escape(name->raw) + "</td><td>" +
             cell("type") + "</td><td>" + cell("unit") + "</td><td>" +
             cell("value") + "</td><td>" + cell("count") + "</td><td>" +
             cell("p50") + "</td><td>" + cell("p95") + "</td><td>" +
             cell("p99") + "</td></tr>\n";
    if (name->raw == "store.wear_writes") {
      const JsonValue* bounds = m.find("bounds");
      const JsonValue* buckets = m.find("buckets");
      if (bounds != nullptr && buckets != nullptr && bounds->is_array() &&
          buckets->is_array()) {
        std::vector<double> bs, cs;
        for (const JsonValue& b : bounds->items) bs.push_back(b.number);
        for (const JsonValue& c : buckets->items) cs.push_back(c.number);
        wear_chart = histogram_chart(bs, cs, "writes per cell");
      }
    }
  }
  *metrics_table_out = table + "</tbody></table></section>\n";
  return out + wear_chart + "</section>\n";
}

std::string events_section(const std::string& events_jsonl) {
  std::string out = "<section><h2>Event log</h2>\n";
  if (events_jsonl.empty()) {
    return out + note("event log not captured") + "</section>\n";
  }
  const auto rows = jsonl_parse(events_jsonl);
  if (rows.empty()) return out + note("event log is empty") + "</section>\n";
  constexpr std::size_t kMaxRows = 250;
  out +=
      "<table><thead><tr><th>seq</th><th>t (ns)</th><th>kind</th>"
      "<th>severity</th><th>detail</th><th>fields</th></tr></thead><tbody>\n";
  const std::size_t shown = std::min(rows.size(), kMaxRows);
  for (std::size_t i = 0; i < shown; ++i) {
    const JsonValue& ev = rows[i];
    const auto cell = [&](const char* key) {
      const JsonValue* v = ev.find(key);
      return v != nullptr ? html_escape(v->display()) : std::string("");
    };
    std::string fields;
    if (const JsonValue* f = ev.find("fields")) {
      for (const auto& [k, v] : f->members) {
        if (!fields.empty()) fields += ", ";
        fields += html_escape(k) + "=" + html_escape(v.display());
      }
    }
    const std::string sev = cell("severity");
    out += "<tr><td>" + cell("seq") + "</td><td>" + cell("t_ns") +
           "</td><td>" + cell("kind") + "</td><td class=\"sev-" + sev +
           "\">" + sev + "</td><td>" + cell("detail") + "</td><td>" + fields +
           "</td></tr>\n";
  }
  out += "</tbody></table>\n";
  if (rows.size() > shown) {
    out += note("showing first " + std::to_string(shown) + " of " +
                std::to_string(rows.size()) + " events (full log embedded)");
  }
  return out + "</section>\n";
}

std::string embed_payload(const std::string& id, const std::string& payload) {
  return "<script type=\"application/json\" id=\"" + id + "\">" +
         (payload.empty() ? std::string("null")
                          : script_embed_escape(payload)) +
         "</script>\n";
}

// Palette and surfaces from the repo dataviz conventions: light/dark
// surface pairs, ink tokens for all text, series slots s1..s4.
const char kStyle[] = R"css(
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; max-width: 760px;
  margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
.chart { width: 100%; height: auto; }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px; }
.axis { fill: var(--ink2); font-size: 12px; }
.vlabel { fill: var(--ink2); font-size: 11px; }
.slabel { font-size: 12px; }
.note { color: var(--muted); font-style: italic; }
.legend { margin: 0.4rem 0; }
.key { margin-right: 1.2rem; color: var(--ink2); font-size: 12px; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 0.35rem; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th { text-align: left; color: var(--ink2); border-bottom: 1px solid var(--grid);
  padding: 3px 8px 3px 0; }
td { border-bottom: 1px solid var(--grid); padding: 3px 8px 3px 0; }
.sev-warn { color: var(--s4); } .sev-error { color: var(--s2); }
)css";

}  // namespace

std::string generate_report_html(const ReportInputs& inputs,
                                 const std::string& title) {
  std::string metrics_table;
  const std::string wear = wear_section(inputs.metrics_json, &metrics_table);

  std::string out = "<!doctype html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n";
  out += "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out += "<style>" + std::string(kStyle) + "</style>\n</head>\n<body>\n";
  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += note("self-contained run report generated by refit_report; raw "
              "payloads are embedded as application/json blocks");
  out += phase_timing_section(inputs.trace_json);
  out += detection_quality_section(inputs.events_jsonl);
  out += accuracy_section(inputs.timeseries_jsonl);
  out += wear;
  out += events_section(inputs.events_jsonl);
  out += metrics_table;
  out += embed_payload("refit-trace", inputs.trace_json);
  out += embed_payload("refit-metrics", inputs.metrics_json);
  out += embed_payload("refit-timeseries", inputs.timeseries_jsonl);
  out += embed_payload("refit-events", inputs.events_jsonl);
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace refit::tools
