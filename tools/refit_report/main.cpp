// refit-report CLI: merge a run's observability artifacts into one
// self-contained HTML dashboard (see report.hpp).
//
// Usage:
//   refit_report [--trace F] [--metrics F] [--timeseries F] [--events F]
//                --out FILE [--title TEXT]
//
// All inputs are optional (also accepted as --flag=value); a missing or
// unreadable file renders its section as "not captured" rather than
// failing, so partial runs still produce a report.
//
// Exit status: 0 = report written, 2 = usage error or output unwritable.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "report.hpp"

namespace {

std::string read_file_or_empty(const std::string& path, const char* what) {
  if (path.empty()) return {};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "refit_report: " << what << " file " << path
              << " unreadable; section will read 'not captured'\n";
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool flag_value(int argc, char** argv, int& i, const std::string& name,
                std::string& out) {
  const std::string arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << "refit_report: " << name << " needs a value\n";
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(name + "=", 0) == 0) {
    out = arg.substr(name.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, timeseries_path, events_path;
  std::string out_path;
  std::string title = "refit run report";

  for (int i = 1; i < argc; ++i) {
    if (flag_value(argc, argv, i, "--trace", trace_path)) continue;
    if (flag_value(argc, argv, i, "--metrics", metrics_path)) continue;
    if (flag_value(argc, argv, i, "--timeseries", timeseries_path)) continue;
    if (flag_value(argc, argv, i, "--events", events_path)) continue;
    if (flag_value(argc, argv, i, "--out", out_path)) continue;
    if (flag_value(argc, argv, i, "--title", title)) continue;
    std::cerr << "refit_report: unknown argument '" << argv[i] << "'\n";
    return 2;
  }
  if (out_path.empty()) {
    std::cerr << "usage: refit_report [--trace F] [--metrics F] "
                 "[--timeseries F] [--events F] --out FILE [--title TEXT]\n";
    return 2;
  }

  refit::tools::ReportInputs inputs;
  inputs.trace_json = read_file_or_empty(trace_path, "trace");
  inputs.metrics_json = read_file_or_empty(metrics_path, "metrics");
  inputs.timeseries_jsonl = read_file_or_empty(timeseries_path, "timeseries");
  inputs.events_jsonl = read_file_or_empty(events_path, "events");

  const std::string html =
      refit::tools::generate_report_html(inputs, title);
  std::ofstream os(out_path, std::ios::binary);
  if (!os) {
    std::cerr << "refit_report: cannot write " << out_path << "\n";
    return 2;
  }
  os << html;
  std::cerr << "refit_report: wrote " << out_path << " (" << html.size()
            << " bytes)\n";
  return 0;
}
