// refit-report: offline HTML run-report generator (docs/tooling.md,
// docs/observability.md). Merges the four observability artifacts a run
// can produce — Chrome trace JSON, metrics catalogue JSON, timeseries
// JSONL, event-log JSONL — into one self-contained HTML dashboard: no
// external scripts or stylesheets, charts are inline SVG computed here,
// and the raw payloads are embedded in <script type="application/json">
// blocks so downstream tooling can re-extract them from the report.
#pragma once

#include <string>

namespace refit::tools {

/// Raw artifact text, exactly as read from disk. An empty string means
/// "not captured": the report renders the section header with a note
/// instead of a chart, and embeds `null` for that payload.
struct ReportInputs {
  std::string trace_json;       // Tracer::write_chrome_json output
  std::string metrics_json;     // MetricsRegistry::write_json output
  std::string timeseries_jsonl; // TimeseriesRecorder::write_jsonl output
  std::string events_jsonl;     // EventLog::write_jsonl output
};

/// Render the full dashboard. Never fails: malformed payloads degrade to
/// a "could not parse" note in the affected section.
std::string generate_report_html(const ReportInputs& inputs,
                                 const std::string& title);

}  // namespace refit::tools
