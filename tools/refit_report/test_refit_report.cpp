// Smoke tests for the HTML run-report generator (report.hpp): the output
// must be structurally sound, embed all four payloads retrievably, and
// degrade gracefully when inputs are missing.
#include "report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace refit::tools {
namespace {

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

ReportInputs full_inputs() {
  ReportInputs in;
  in.trace_json = R"({"traceEvents":[
    {"name":"detection","cat":"refit","ph":"X","ts":0,"dur":1200,"pid":1,"tid":0},
    {"name":"train","cat":"refit","ph":"X","ts":1300,"dur":8400,"pid":1,"tid":0},
    {"name":"engine.run","cat":"refit","ph":"X","ts":0,"dur":9700,"pid":1,"tid":0}
  ]})";
  in.metrics_json = R"({"metrics":[
    {"name":"engine.iterations","type":"counter","unit":"iters","value":6},
    {"name":"store.wear_writes","type":"histogram","unit":"writes","count":64,
     "sum":640,"p50":9,"p95":48,"p99":90,
     "bounds":[1,10,100,1000],"buckets":[10,40,14,0,0]}
  ]})";
  in.timeseries_jsonl =
      "{\"seq\":0,\"t_ns\":1000,\"iteration\":1,\"metrics\":{"
      "\"engine.eval_accuracy\":{\"value\":0.82}}}\n"
      "{\"seq\":1,\"t_ns\":2000,\"iteration\":2,\"metrics\":{"
      "\"engine.eval_accuracy\":{\"value\":0.91}}}\n";
  in.events_jsonl =
      "{\"seq\":0,\"t_ns\":1000,\"kind\":\"fault-detected\",\"severity\":"
      "\"info\",\"detail\":\"detection\",\"fields\":{\"iteration\":1,"
      "\"precision\":0.9,\"recall\":0.8}}\n"
      "{\"seq\":1,\"t_ns\":2000,\"kind\":\"soft-classified\",\"severity\":"
      "\"info\",\"detail\":\"detection\",\"fields\":{\"iteration\":1,"
      "\"soft_precision\":0.7,\"soft_recall\":0.6}}\n"
      "{\"seq\":2,\"t_ns\":3000,\"kind\":\"remap\",\"severity\":\"warn\","
      "\"detail\":\"remap\",\"fields\":{\"iteration\":2,\"cost_after\":3}}\n";
  return in;
}

TEST(Report, EmbedsAllFourPayloadsAndRendersCharts) {
  const std::string html = generate_report_html(full_inputs(), "test run");
  for (const char* id :
       {"refit-trace", "refit-metrics", "refit-timeseries", "refit-events"}) {
    EXPECT_NE(html.find("id=\"" + std::string(id) + "\""), std::string::npos)
        << id;
  }
  // Structurally sound: tags balance, payload script blocks all typed.
  EXPECT_EQ(count_occurrences(html, "<script"),
            count_occurrences(html, "</script>"));
  EXPECT_EQ(count_occurrences(html, "<script"),
            count_occurrences(html, "type=\"application/json\""));
  EXPECT_EQ(count_occurrences(html, "<svg"),
            count_occurrences(html, "</svg>"));
  EXPECT_EQ(count_occurrences(html, "<section>"),
            count_occurrences(html, "</section>"));
  // All four chart kinds made it: phase bars, p/r lines, accuracy, wear.
  EXPECT_GE(count_occurrences(html, "<svg"), 4u);
  EXPECT_NE(html.find("hard precision"), std::string::npos);
  EXPECT_NE(html.find("soft recall"), std::string::npos);
  EXPECT_NE(html.find("eval accuracy"), std::string::npos);
  EXPECT_NE(html.find("writes per cell"), std::string::npos);
  // The umbrella span is excluded from the phase bars.
  EXPECT_EQ(html.find("engine.run ("), std::string::npos);
  // Events table carries the severity class for the remap warning.
  EXPECT_NE(html.find("sev-warn"), std::string::npos);
}

TEST(Report, EscapesScriptCloserInEmbeddedPayloads) {
  ReportInputs in;
  in.events_jsonl = "{\"detail\":\"</script><b>bad\"}\n";
  const std::string html = generate_report_html(in, "t");
  // The raw closer must not survive inside the embed block; the escaped
  // form must.
  EXPECT_EQ(html.find("</script><b>bad"), std::string::npos);
  EXPECT_NE(html.find("<\\/script><b>bad"), std::string::npos);
  EXPECT_EQ(count_occurrences(html, "<script"),
            count_occurrences(html, "</script>"));
}

TEST(Report, MissingInputsDegradeToNotCaptured) {
  const std::string html = generate_report_html(ReportInputs{}, "empty");
  EXPECT_GE(count_occurrences(html, "not captured"), 4u);
  // Empty payloads embed as null, ids still present for tooling.
  EXPECT_EQ(count_occurrences(html, ">null</script>"), 4u);
  EXPECT_EQ(count_occurrences(html, "<section>"),
            count_occurrences(html, "</section>"));
}

TEST(Report, MalformedPayloadDegradesWithoutCrashing) {
  ReportInputs in;
  in.trace_json = "{\"traceEvents\": oops";
  in.metrics_json = "[not an object]";
  const std::string html = generate_report_html(in, "bad");
  EXPECT_NE(html.find("could not parse"), std::string::npos);
  EXPECT_NE(html.find("id=\"refit-trace\""), std::string::npos);
}

TEST(Report, TitleIsHtmlEscaped) {
  const std::string html =
      generate_report_html(ReportInputs{}, "<b>run & done</b>");
  EXPECT_EQ(html.find("<b>run"), std::string::npos);
  EXPECT_NE(html.find("&lt;b&gt;run &amp; done&lt;/b&gt;"),
            std::string::npos);
}

}  // namespace
}  // namespace refit::tools
