// refit-det — the whole-program determinism taint analysis (det.hpp has
// the rule catalogue). The engine is a classic two-level fixpoint:
//
//   inner   per-function forward dataflow over the shared CFG, state =
//           variable → taint mask (+ per-bit provenance chain for
//           --explain). Sources introduce bits, assignments/returns/calls
//           propagate them, sort() cleanses ordering bits, and sinks
//           consume them.
//   outer   per-function summaries (return taint, param→return flow,
//           param→sink hits) joined to a fixpoint over the call graph:
//           when a function's summary grows, its callers are re-analyzed.
//           Joins are monotone over finite masks, so both levels
//           terminate; chains are first-wins and never drive convergence.
//
// Everything is token-grounded and unresolved (no types, no overloads):
// same-named functions share one summary, member state is tracked per
// root variable, and lambda captures are not propagated. Conservative in
// both directions — the ratchet baseline absorbs deliberate keeps, and
// `// refit-det: allow(rule)` suppresses point false positives.
#include "det.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <istream>
#include <map>
#include <set>
#include <string>

namespace refit::det {

namespace {

using refit::cfg::BasicBlock;
using refit::cfg::FileCfg;
using refit::cfg::FunctionCfg;
using refit::cfg::in_nested_body;
using refit::cfg::Stmt;
using refit::lint::match_brace;
using refit::lint::match_paren;
using refit::lint::Token;
using refit::lint::TokKind;

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string loc(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

template <typename F>
void for_each_bit(Taint mask, F f) {
  for (Taint b = 1; b != 0; b <<= 1)
    if (mask & b) f(b);
}

// ---------------------------------------------------------------------------
// Taint values and expression info
// ---------------------------------------------------------------------------

using Chain = std::vector<std::string>;

/// Taint state of one variable: mask + a provenance chain per bit.
/// Chains are first-wins (set when the bit first arrives, never replaced),
/// which keeps them bounded under loops and recursion.
struct Val {
  Taint mask = 0;
  std::map<Taint, Chain> chains;
};

void join_val(Val& into, const Val& from) {
  into.mask |= from.mask;
  for (const auto& [bit, ch] : from.chains) into.chains.emplace(bit, ch);
}

/// Result of evaluating an expression range: taints plus, per bit, the
/// name that carried it (the finding's `subject`).
struct ExprInfo {
  Taint mask = 0;
  std::map<Taint, Chain> chains;
  std::map<Taint, std::string> carriers;

  void add(Taint bits, const Chain& chain, const std::string& carrier) {
    mask |= bits;
    for_each_bit(bits, [&](Taint b) {
      chains.emplace(b, chain);
      carriers.emplace(b, carrier);
    });
  }
  void merge(const ExprInfo& o) {
    mask |= o.mask;
    for (const auto& [b, c] : o.chains) chains.emplace(b, c);
    for (const auto& [b, s] : o.carriers) carriers.emplace(b, s);
  }
  [[nodiscard]] Val to_val() const {
    Val v;
    v.mask = mask;
    v.chains = chains;
    return v;
  }
};

using State = std::map<std::string, Val>;

// ---------------------------------------------------------------------------
// Program-wide context (pre-pass results)
// ---------------------------------------------------------------------------

struct ProgramCtx {
  const std::vector<FileCfg>* files = nullptr;
  std::set<std::string> known_fns;  ///< non-lambda function names, all files
  std::set<std::string> unordered_aliases;  ///< `using X = unordered_…`
  std::set<std::string> ptr_aliases;        ///< `using X = map<T*, …>`
  std::map<std::string, Summary>* summaries = nullptr;
};

/// Per-function analysis context. `sum`/`findings`/`emitted` may point to
/// scratch storage during the fixpoint rounds.
struct FnCtx {
  const ProgramCtx* prog = nullptr;
  const FileCfg* file = nullptr;
  int fn_idx = 0;
  std::string owner;  ///< nearest named enclosing function (finding detail)
  std::set<std::string> ostream_vars;
  std::set<std::string> metric_vars;
  Summary* sum = nullptr;
  std::vector<Finding>* findings = nullptr;  ///< null during fixpoint rounds
  std::set<std::string>* emitted = nullptr;  ///< dedup keys across the program
};

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Rule-bit taint introduced by the identifier at `i`, with a human
/// description for the chain. Checked before the member/qualified filters
/// so `std::chrono::steady_clock::now()` still registers.
Taint source_bits(const std::vector<Token>& toks, std::size_t i,
                  std::size_t limit, const char** desc) {
  static const std::set<std::string> kWallclockNames = {
      "steady_clock", "system_clock", "high_resolution_clock", "clock_gettime",
      "gettimeofday"};
  static const std::set<std::string> kEntropyNames = {"random_device",
                                                      "getpid", "getentropy"};
  static const std::set<std::string> kThreadNames = {"hardware_concurrency",
                                                     "this_thread", "kFast"};
  const std::string& name = toks[i].text;
  if (kWallclockNames.count(name)) {
    *desc = "raw wall-clock read outside the obs::Clock seam";
    return kWallclock;
  }
  if (kEntropyNames.count(name)) {
    *desc = "entropy read (varies every run)";
    return kNondetSeed;
  }
  if (kThreadNames.count(name)) {
    *desc = name == "kFast"
                ? "kFast reduction mode (result depends on partitioning)"
                : "worker-thread count / thread identity";
    return kThreadCount;
  }
  // time(...) as a call — the classic nondeterministic seed.
  if (name == "time" && i + 1 < limit && is_punct(toks[i + 1], "(") &&
      (i == 0 || (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")))) {
    *desc = "time() wall-clock read";
    return kWallclock;
  }
  // reinterpret_cast<uintptr_t>(p) — a pointer value laundered to integer.
  if (name == "reinterpret_cast") {
    for (std::size_t j = i + 1; j < limit && j < i + 6; ++j)
      if (toks[j].kind == TokKind::kIdent &&
          (toks[j].text == "uintptr_t" || toks[j].text == "intptr_t")) {
        *desc = "pointer value cast to integer (addresses vary run to run)";
        return kPointerOrder;
      }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Declaration classification (container / stream / metric types)
// ---------------------------------------------------------------------------

/// True if `map`/`set`-ish ident at `i` opens a template whose first
/// argument mentions a pointer (`map<const Tile*, …>`).
bool ptr_keyed_at(const std::vector<Token>& toks, std::size_t i,
                  std::size_t limit) {
  static const std::set<std::string> kMapNames = {
      "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset", "flat_map", "flat_set"};
  if (!kMapNames.count(toks[i].text)) return false;
  if (i + 1 >= limit || !is_punct(toks[i + 1], "<")) return false;
  for (std::size_t j = i + 2; j < limit && j < i + 32; ++j) {
    if (toks[j].kind == TokKind::kPunct &&
        (toks[j].text == "," || toks[j].text == ">" || toks[j].text == ">>" ||
         toks[j].text == ";"))
      return false;
    if (is_punct(toks[j], "*")) return true;
  }
  return false;
}

/// Container-class bits implied by the type tokens in [a, b).
Taint container_bits_in_range(const ProgramCtx& prog,
                              const std::vector<Token>& toks, std::size_t a,
                              std::size_t b) {
  Taint bits = 0;
  for (std::size_t i = a; i < b; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    if (name.rfind("unordered_", 0) == 0) bits |= kUnorderedCont;
    if (prog.unordered_aliases.count(name)) bits |= kUnorderedCont;
    if (prog.ptr_aliases.count(name)) bits |= kPtrKeyedCont;
    if (ptr_keyed_at(toks, i, b)) bits |= kPtrKeyedCont;
  }
  return bits;
}

bool range_has_ident(const std::vector<Token>& toks, std::size_t a,
                     std::size_t b, const std::set<std::string>& names) {
  for (std::size_t i = a; i < b; ++i)
    if (toks[i].kind == TokKind::kIdent && names.count(toks[i].text))
      return true;
  return false;
}

const std::set<std::string>& ostream_type_names() {
  static const std::set<std::string> kNames = {"ostream", "ofstream",
                                               "ostringstream"};
  return kNames;
}
const std::set<std::string>& metric_type_names() {
  static const std::set<std::string> kNames = {"Gauge", "Counter", "Histogram"};
  return kNames;
}

// ---------------------------------------------------------------------------
// Declaration helpers (shared heuristics with refit-flow)
// ---------------------------------------------------------------------------

/// Heuristic: is toks[i] the *declared name* of a declaration inside `st`?
/// Same shape as refit-flow's: the name is followed by an initializer or
/// terminator and everything before it is type-shaped.
bool is_decl_name_at(const std::vector<Token>& toks, const Stmt& st,
                     std::size_t i) {
  if (toks[i].kind != TokKind::kIdent || i == st.first) return false;
  static const std::set<std::string> kFollow = {"=", "{", "(", ";",
                                                ",", "[", ":", ")"};
  if (i + 1 < st.last && (toks[i + 1].kind != TokKind::kPunct ||
                          !kFollow.count(toks[i + 1].text)))
    return false;
  static const std::set<std::string> kBlockers = {
      "return", "delete", "throw", "new", "case", "goto", "co_return"};
  static const std::set<std::string> kTypePunct = {"::", "<", ">", ">>",
                                                   "*",  "&", "&&"};
  for (std::size_t j = i; j-- > st.first;) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent) {
      if (kBlockers.count(t.text)) return false;
      continue;
    }
    if (t.kind == TokKind::kNumber) continue;
    if (t.kind == TokKind::kPunct && kTypePunct.count(t.text)) continue;
    return false;
  }
  return true;
}

/// Relaxed declaration check that also accepts template types whose
/// arguments contain commas (`std::map<int, double> m = …`), which the
/// strict backward scan rejects. The name must still be preceded by a
/// type-shaped token and followed by an initializer/terminator.
bool decl_name_like(const std::vector<Token>& toks, const Stmt& st,
                    std::size_t i) {
  if (is_decl_name_at(toks, st, i)) return true;
  if (toks[i].kind != TokKind::kIdent || i == st.first) return false;
  static const std::set<std::string> kFollow = {"=", "{", "(", ";", ","};
  if (i + 1 >= st.last || toks[i + 1].kind != TokKind::kPunct ||
      !kFollow.count(toks[i + 1].text))
    return false;
  static const std::set<std::string> kBlockers = {
      "return", "delete", "throw", "new", "case", "goto", "co_return"};
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdent) return !kBlockers.count(prev.text);
  return is_punct(prev, ">") || is_punct(prev, ">>") || is_punct(prev, "*") ||
         is_punct(prev, "&") || is_punct(prev, "&&");
}

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  static const std::set<std::string> kOps = {"=",  "+=",  "-=",  "*=",
                                             "/=", "%=",  "&=",  "|=",
                                             "^=", "<<=", ">>="};
  return kOps.count(t.text) > 0;
}

/// The name findings key on: the nearest *named* enclosing function.
std::string owner_name(const FileCfg& file, int idx) {
  int i = idx;
  while (i >= 0 && file.functions[i].is_lambda)
    i = file.functions[i].enclosing;
  return i >= 0 ? file.functions[i].name : "<lambda>";
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

const char* sink_desc(SinkKind k) {
  switch (k) {
    case SinkKind::kOutput: return "serialized output";
    case SinkKind::kHash: return "a golden hash";
    case SinkKind::kMetric: return "a metric sample";
    case SinkKind::kRngSeed: return "an RNG seed";
  }
  return "a sink";
}

std::string rule_for(SinkKind kind, Taint bit) {
  if (kind == SinkKind::kRngSeed) return "nondet-seed-provenance";
  switch (bit) {
    case kWallclock: return "wallclock-to-output";
    case kNondetSeed: return "nondet-seed-provenance";
    case kUnorderedIter: return "unordered-iteration-to-output";
    case kPointerOrder: return "pointer-order-dependence";
    case kThreadCount: return "threadcount-value-dependence";
    default: return "";
  }
}

std::string message_for(const std::string& rule, const std::string& subject,
                        SinkKind kind) {
  const std::string sink = sink_desc(kind);
  if (rule == "nondet-seed-provenance") {
    if (kind == SinkKind::kRngSeed)
      return "'" + subject + "' carries nondeterministic state into an RNG "
             "seed — the stream is no longer reproducible from the config "
             "seed; derive it with Rng::split() from the funneled root seed";
    return "'" + subject + "' is entropy-derived and reaches " + sink +
           " — runs cannot be reproduced from the config seed";
  }
  if (rule == "unordered-iteration-to-output")
    return "'" + subject + "' carries unordered-container iteration order "
           "into " + sink + " — element order varies across runs and "
           "platforms; sort (or key by stable indices) before serializing";
  if (rule == "pointer-order-dependence")
    return "'" + subject + "' depends on pointer keys or pointer values "
           "reaching " + sink + " — addresses vary run to run under ASLR; "
           "key by stable indices instead";
  if (rule == "wallclock-to-output")
    return "'" + subject + "' carries a raw wall-clock read into " + sink +
           " — route timing through the obs::Clock seam or keep it out of "
           "deterministic artifacts";
  return "'" + subject + "' depends on the worker-thread count (or the "
         "kFast reduction mode) and reaches " + sink + " — serialized "
         "results must be identical at any REFIT_THREADS";
}

/// Consume a tainted value at a sink: rule bits become findings (reported
/// at `report_line` in this function's file), param pseudo-bits become
/// SinkHit records in the current summary. `tail` is the chain fragment
/// from the current expression to the sink, final step included.
void sink_value(FnCtx& ctx, SinkKind kind, const std::string& sink_file,
                int sink_line, int report_line, const ExprInfo& info,
                const std::string& fallback_subject, const Chain& tail) {
  for_each_bit(info.mask & kRuleMask, [&](Taint bit) {
    const std::string rule = rule_for(kind, bit);
    if (rule.empty()) return;
    const auto ci = info.carriers.find(bit);
    const std::string subject =
        ci != info.carriers.end() ? ci->second : fallback_subject;
    Finding f;
    f.file = ctx.file->path;
    f.line = report_line;
    f.rule = rule;
    f.detail = ctx.owner + ":" + subject;
    f.message = message_for(rule, subject, kind);
    const auto chi = info.chains.find(bit);
    if (chi != info.chains.end()) f.chain = chi->second;
    f.chain.insert(f.chain.end(), tail.begin(), tail.end());
    if (ctx.findings != nullptr && ctx.emitted != nullptr &&
        ctx.emitted->insert(f.key()).second)
      ctx.findings->push_back(std::move(f));
  });
  for_each_bit(info.mask & kParamMask, [&](Taint bit) {
    int param = 0;
    for (Taint b = bit >> 9; b != 0; b >>= 1) ++param;
    for (const SinkHit& h : ctx.sum->param_sinks)
      if (h.kind == kind && h.param == param && h.file == sink_file &&
          h.line == sink_line)
        return;
    SinkHit h;
    h.kind = kind;
    h.param = param;
    h.file = sink_file;
    h.line = sink_line;
    const auto ci = info.carriers.find(bit);
    h.subject = ci != info.carriers.end() ? ci->second : fallback_subject;
    const auto chi = info.chains.find(bit);
    if (chi != info.chains.end()) h.steps = chi->second;
    h.steps.insert(h.steps.end(), tail.begin(), tail.end());
    ctx.sum->param_sinks.push_back(std::move(h));
  });
}

// ---------------------------------------------------------------------------
// Expression taint evaluation
// ---------------------------------------------------------------------------

ExprInfo expr_taint(FnCtx& ctx, State& state, std::size_t a, std::size_t b);

/// Split the argument list of the call whose '(' is at `open` into
/// depth-0 comma-separated ranges. Returns the matching ')' (or npos).
/// `template_angles` additionally treats <…> as nesting — required for
/// parameter lists, where `map<int, double> m` must stay one segment
/// (call arguments keep it off: there '<' is usually a comparison).
std::size_t split_args(const std::vector<Token>& toks, std::size_t open,
                       std::size_t limit,
                       std::vector<std::pair<std::size_t, std::size_t>>* args,
                       bool template_angles = false) {
  const std::size_t close = match_paren(toks, open);
  if (close == std::string::npos || close > limit) return std::string::npos;
  std::size_t start = open + 1;
  int depth = 0;
  int angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    else if (template_angles && t.text == "<") ++angle;
    else if (template_angles && (t.text == ">" || t.text == ">>"))
      angle = std::max(0, angle - (t.text == ">>" ? 2 : 1));
    else if (t.text == "," && depth == 0 && angle == 0) {
      args->emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < close) args->emplace_back(start, close);
  return close;
}

/// Apply a known callee's summary at a call site: return taints join the
/// expression, param→return flows pass argument taints through, and
/// param→sink hits fire against the argument taints.
void apply_call(FnCtx& ctx, State& state, ExprInfo& out, std::size_t name_pos,
                std::size_t limit, std::size_t* resume) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  const std::string& callee = toks[name_pos].text;
  const int call_line = toks[name_pos].line;
  std::vector<std::pair<std::size_t, std::size_t>> arg_ranges;
  const std::size_t close =
      split_args(toks, name_pos + 1, limit, &arg_ranges);
  if (close == std::string::npos) return;  // malformed: caller scans linearly
  *resume = close;

  std::vector<ExprInfo> args;
  args.reserve(arg_ranges.size());
  for (const auto& [s, e] : arg_ranges)
    args.push_back(expr_taint(ctx, state, s, e));

  const auto si = ctx.prog->summaries->find(callee);
  if (si == ctx.prog->summaries->end()) {
    for (const ExprInfo& ai : args) out.merge(ai);  // unknown: args leak
    return;
  }
  const Summary& s = si->second;
  const std::string here = loc(ctx.file->path, call_line);

  for_each_bit(s.ret_taint, [&](Taint bit) {
    Chain ch;
    const auto it = s.ret_chains.find(bit);
    if (it != s.ret_chains.end()) ch = it->second;
    ch.push_back(here + ": returned by '" + callee + "()'");
    out.add(bit, ch, callee);
  });
  for (std::size_t j = 0;
       j < args.size() && j < static_cast<std::size_t>(kMaxParams); ++j) {
    if ((s.param_to_ret >> j) & 1u) {
      ExprInfo through = args[j];
      for (auto& [bit, ch] : through.chains)
        ch.push_back(here + ": passes through '" + callee + "()'");
      out.merge(through);
    }
  }
  for (const SinkHit& h : s.param_sinks) {
    if (h.param < 0 || static_cast<std::size_t>(h.param) >= args.size())
      continue;
    Chain tail;
    tail.push_back(here + ": passed to '" + callee + "()' (reaches " +
                   std::string(sink_desc(h.kind)) + " at " +
                   loc(h.file, h.line) + ")");
    tail.insert(tail.end(), h.steps.begin(), h.steps.end());
    sink_value(ctx, h.kind, h.file, h.line, call_line,
               args[static_cast<std::size_t>(h.param)], h.subject, tail);
  }
}

ExprInfo expr_taint(FnCtx& ctx, State& state, std::size_t a, std::size_t b) {
  ExprInfo out;
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  for (std::size_t i = a; i < b; ++i) {
    if (in_nested_body(*ctx.file, ctx.fn_idx, i)) continue;
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    const char* desc = nullptr;
    if (const Taint src = source_bits(toks, i, b, &desc)) {
      out.add(src, {loc(ctx.file->path, t.line) + ": source: " +
                    std::string(desc)},
              t.text);
      continue;
    }

    const bool member = i > a && (is_punct(toks[i - 1], ".") ||
                                  is_punct(toks[i - 1], "->"));
    const bool qualified = i > a && is_punct(toks[i - 1], "::");
    const bool call = i + 1 < b && is_punct(toks[i + 1], "(");

    if (call && !member && !state.count(t.text) &&
        ctx.prog->known_fns.count(t.text)) {
      std::size_t resume = i;
      apply_call(ctx, state, out, i, b, &resume);
      i = resume;  // consumed args do not leak into the expression value
      continue;
    }
    if (member || qualified) continue;  // member / scope names, not reads

    const auto it = state.find(t.text);
    if (it == state.end()) continue;
    const Val& v = it->second;
    for_each_bit(v.mask, [&](Taint bit) {
      const auto ci = v.chains.find(bit);
      out.add(bit, ci != v.chains.end() ? ci->second : Chain{}, t.text);
    });
    // Functor/entropy-object call (`rd()`): the object's taint is the
    // result's taint — already merged above.
    // `.begin()` / `.cbegin()` converts container-order bits into
    // iteration-order bits (the explicit-iterator analogue of range-for).
    if (i + 2 < b && is_punct(toks[i + 1], ".") &&
        (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin"))) {
      const std::string here = loc(ctx.file->path, t.line);
      if (v.mask & kUnorderedCont) {
        Chain ch;
        const auto ci = v.chains.find(kUnorderedCont);
        if (ci != v.chains.end()) ch = ci->second;
        ch.push_back(here + ": iterated — unordered container order is "
                     "hash/insertion-dependent");
        out.add(kUnorderedIter, ch, t.text);
      }
      if (v.mask & kPtrKeyedCont) {
        Chain ch;
        const auto ci = v.chains.find(kPtrKeyedCont);
        if (ci != v.chains.end()) ch = ci->second;
        ch.push_back(here + ": iterated — pointer-keyed order varies run "
                     "to run");
        out.add(kPointerOrder, ch, t.text);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Statement transfer
// ---------------------------------------------------------------------------

/// `for (decl : container)` — convert the container's order bits into
/// iteration-order taint on the loop variables. The CFG builder strips
/// the `for (…)` wrapper from loop heads, so a range-for reaches us as
/// `decl : container` with the ':' at paren depth 0.
bool handle_range_for(FnCtx& ctx, State& state, const Stmt& st) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  if (is_ident(toks[st.first], "case") || is_ident(toks[st.first], "default"))
    return false;
  std::size_t colon = std::string::npos;
  int depth = 0;
  for (std::size_t i = st.first; i < st.last; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    else if (depth == 0) {
      // A '?', ';' or assignment before the ':' means a ternary, a classic
      // for-head or a plain statement — not a range-for.
      if (t.text == "?" || t.text == ";" || is_assign_op(t)) return false;
      if (t.text == ":") {
        colon = i;
        break;
      }
    }
  }
  if (colon == std::string::npos || colon == st.first) return false;

  std::set<std::string> loop_vars;
  for (std::size_t i = st.first; i < colon; ++i)
    if (is_punct(toks[i], "[")) {  // structured binding
      for (std::size_t j = i + 1; j < colon && !is_punct(toks[j], "]"); ++j)
        if (toks[j].kind == TokKind::kIdent) loop_vars.insert(toks[j].text);
    }
  if (loop_vars.empty())
    for (std::size_t i = colon; i-- > st.first;)
      if (toks[i].kind == TokKind::kIdent) {
        loop_vars.insert(toks[i].text);
        break;
      }
  if (loop_vars.empty()) return false;

  const ExprInfo ci = expr_taint(ctx, state, colon + 1, st.last);
  Val lv;
  for_each_bit(ci.mask & kRuleMask, [&](Taint bit) {
    lv.mask |= bit;
    const auto it = ci.chains.find(bit);
    lv.chains.emplace(bit, it != ci.chains.end() ? it->second : Chain{});
  });
  const std::string here = loc(ctx.file->path, toks[st.first].line);
  if (ci.mask & kUnorderedCont) {
    Chain ch;
    const auto it = ci.chains.find(kUnorderedCont);
    if (it != ci.chains.end()) ch = it->second;
    ch.push_back(here + ": iterated here — unordered container order is "
                 "hash/insertion-dependent");
    lv.mask |= kUnorderedIter;
    lv.chains.emplace(kUnorderedIter, std::move(ch));
  }
  if (ci.mask & kPtrKeyedCont) {
    Chain ch;
    const auto it = ci.chains.find(kPtrKeyedCont);
    if (it != ci.chains.end()) ch = it->second;
    ch.push_back(here + ": iterated here — pointer-keyed order varies run "
                 "to run");
    lv.mask |= kPointerOrder;
    lv.chains.emplace(kPointerOrder, std::move(ch));
  }
  for (const std::string& v : loop_vars) state[v] = lv;
  return true;
}

/// `std::sort` / `std::stable_sort` over a container makes its order
/// deterministic again: clear the ordering bits of every mentioned var.
bool handle_cleanser(FnCtx& ctx, State& state, const Stmt& st) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "sort" && toks[i].text != "stable_sort"))
      continue;
    if (i + 1 >= st.last || !is_punct(toks[i + 1], "(")) continue;
    std::size_t close = match_paren(toks, i + 1);
    if (close == std::string::npos || close > st.last) close = st.last;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      const auto it = state.find(toks[j].text);
      if (it == state.end()) continue;
      it->second.mask &= ~(kUnorderedIter | kPointerOrder);
      it->second.chains.erase(kUnorderedIter);
      it->second.chains.erase(kPointerOrder);
    }
    return true;
  }
  return false;
}

/// Is the receiver chain ending at the '.'/'->' before `dot` a metric
/// handle (a Gauge/Counter/Histogram variable, or a registry chain like
/// `metrics().gauge("x")`)?
bool metric_receiver(const FnCtx& ctx, const std::vector<Token>& toks,
                     const Stmt& st, std::size_t dot) {
  std::size_t p = dot;  // points at the connector
  while (p > st.first) {
    std::size_t q = p - 1;
    if (is_punct(toks[q], ")")) {
      int d = 1;
      while (q > st.first && d != 0) {
        --q;
        if (is_punct(toks[q], ")")) ++d;
        else if (is_punct(toks[q], "(")) --d;
      }
      if (q == st.first) return false;
      --q;  // the callee ident before '('
    }
    if (toks[q].kind != TokKind::kIdent) return false;
    const std::string low = lower(toks[q].text);
    if (low.find("gauge") != std::string::npos ||
        low.find("counter") != std::string::npos ||
        low.find("histogram") != std::string::npos)
      return true;
    if (ctx.metric_vars.count(toks[q].text)) return true;
    if (q > st.first && (is_punct(toks[q - 1], ".") ||
                         is_punct(toks[q - 1], "->") ||
                         is_punct(toks[q - 1], "::")))
      p = q - 1;
    else
      return false;
  }
  return false;
}

void scan_sinks(FnCtx& ctx, State& state, const Stmt& st) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  static const std::set<std::string> kRngTypes = {
      "Rng", "mt19937", "mt19937_64", "minstd_rand", "default_random_engine"};
  static const std::set<std::string> kSeedMembers = {"seed", "set_state",
                                                     "split", "reseed"};
  static const std::set<std::string> kMetricMethods = {"set", "observe", "add",
                                                       "record", "increment"};
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(*ctx.file, ctx.fn_idx, i)) continue;
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool member = i > st.first && (is_punct(toks[i - 1], ".") ||
                                         is_punct(toks[i - 1], "->"));
    const std::string here = loc(ctx.file->path, t.line);

    // os << … — serialized output (cerr/clog are diagnostics, not sunk).
    if (!member && (ctx.ostream_vars.count(t.text) || t.text == "cout") &&
        i + 1 < st.last && is_punct(toks[i + 1], "<<")) {
      const ExprInfo info = expr_taint(ctx, state, i + 2, st.last);
      sink_value(ctx, SinkKind::kOutput, ctx.file->path, t.line, t.line, info,
                 t.text,
                 {here + ": reaches serialized output ('" + t.text +
                  " << …')"});
      continue;
    }
    // Rng r(expr) / mt19937 g(expr) — stream construction.
    if (kRngTypes.count(t.text) && i + 2 < st.last &&
        toks[i + 1].kind == TokKind::kIdent &&
        (is_punct(toks[i + 2], "(") || is_punct(toks[i + 2], "{")) &&
        is_decl_name_at(toks, st, i + 1)) {
      std::size_t close = is_punct(toks[i + 2], "(")
                              ? match_paren(toks, i + 2)
                              : match_brace(toks, i + 2);
      if (close == std::string::npos || close > st.last) close = st.last;
      const ExprInfo info = expr_taint(ctx, state, i + 3, close);
      sink_value(ctx, SinkKind::kRngSeed, ctx.file->path, t.line, t.line, info,
                 toks[i + 1].text,
                 {here + ": seeds RNG stream '" + toks[i + 1].text + "'"});
      continue;
    }
    // rng.seed(expr) / rng.split(expr) / rng.set_state(expr) / srand(expr).
    const bool seed_member = member && kSeedMembers.count(t.text) > 0;
    const bool srand_call = !member && t.text == "srand";
    if ((seed_member || srand_call) && i + 1 < st.last &&
        is_punct(toks[i + 1], "(")) {
      std::size_t close = match_paren(toks, i + 1);
      if (close == std::string::npos || close > st.last) close = st.last;
      const ExprInfo info = expr_taint(ctx, state, i + 2, close);
      const std::string recv =
          member && i >= 2 && toks[i - 2].kind == TokKind::kIdent
              ? toks[i - 2].text
              : t.text;
      sink_value(ctx, SinkKind::kRngSeed, ctx.file->path, t.line, t.line, info,
                 recv, {here + ": re-seeds / derives RNG stream via " +
                        t.text + "()"});
      continue;
    }
    // Hash functions — golden-hash inputs must be deterministic.
    if ((t.text.find("hash") != std::string::npos ||
         t.text.rfind("fnv", 0) == 0) &&
        i + 1 < st.last && is_punct(toks[i + 1], "(")) {
      std::size_t close = match_paren(toks, i + 1);
      if (close == std::string::npos || close > st.last) close = st.last;
      const ExprInfo info = expr_taint(ctx, state, i + 2, close);
      sink_value(ctx, SinkKind::kHash, ctx.file->path, t.line, t.line, info,
                 t.text, {here + ": feeds golden hash '" + t.text + "()'"});
      continue;
    }
    // save_checkpoint(…) — the serialized checkpoint artifact.
    if (!member && t.text == "save_checkpoint" && i + 1 < st.last &&
        is_punct(toks[i + 1], "(")) {
      std::size_t close = match_paren(toks, i + 1);
      if (close == std::string::npos || close > st.last) close = st.last;
      const ExprInfo info = expr_taint(ctx, state, i + 2, close);
      sink_value(ctx, SinkKind::kOutput, ctx.file->path, t.line, t.line, info,
                 t.text, {here + ": written into a checkpoint"});
      continue;
    }
    // gauge.set(x) / counter.add(x) / histogram.observe(x) — snapshots.
    if (member && kMetricMethods.count(t.text) && i + 1 < st.last &&
        is_punct(toks[i + 1], "(") &&
        metric_receiver(ctx, toks, st, i - 1)) {
      std::size_t close = match_paren(toks, i + 1);
      if (close == std::string::npos || close > st.last) close = st.last;
      const ExprInfo info = expr_taint(ctx, state, i + 2, close);
      sink_value(ctx, SinkKind::kMetric, ctx.file->path, t.line, t.line, info,
                 t.text, {here + ": recorded as a metric sample via " +
                          t.text + "()"});
      continue;
    }
  }
}

void handle_assign_or_decl(FnCtx& ctx, State& state, const Stmt& st) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  // First top-level assignment operator.
  std::size_t op = std::string::npos;
  int depth = 0;
  for (std::size_t i = st.first; i < st.last; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      else if (depth == 0 && i > st.first && is_assign_op(t)) {
        op = i;
        break;
      }
    }
  }
  if (op != std::string::npos) {
    std::size_t e = op - 1;
    bool weak = toks[op].text != "=";
    if (is_punct(toks[e], "]")) {  // x[i] = … — element write, weak update
      int d = 1;
      std::size_t j = e;
      while (j > st.first && d != 0) {
        --j;
        if (is_punct(toks[j], "]")) ++d;
        else if (is_punct(toks[j], "[")) --d;
      }
      if (j <= st.first || toks[j - 1].kind != TokKind::kIdent) return;
      e = j - 1;
      weak = true;
    }
    while (e >= st.first + 2 && (is_punct(toks[e - 1], ".") ||
                                 is_punct(toks[e - 1], "->")) &&
           toks[e - 2].kind == TokKind::kIdent) {
      e -= 2;   // p.field = … — member write taints the whole object,
      weak = true;  // joined (other members keep their taint)
    }
    if (toks[e].kind != TokKind::kIdent) return;
    const std::string root = toks[e].text;
    ExprInfo rhs = expr_taint(ctx, state, op + 1, st.last);
    if (decl_name_like(toks, st, e)) {
      const Taint cb =
          container_bits_in_range(*ctx.prog, toks, st.first, e);
      if (cb)
        rhs.add(cb, {loc(ctx.file->path, toks[e].line) +
                     ": declared as hash-/pointer-ordered container"},
                root);
    }
    const Val nv = rhs.to_val();
    if (weak)
      join_val(state[root], nv);
    else
      state[root] = nv;
    return;
  }
  // No initializer: `std::random_device rd;` / `std::unordered_map<…> m;`.
  for (std::size_t i = st.first; i < st.last; ++i) {
    if (in_nested_body(*ctx.file, ctx.fn_idx, i)) continue;
    if (!decl_name_like(toks, st, i)) continue;
    ExprInfo info = expr_taint(ctx, state, st.first, i);
    const Taint cb = container_bits_in_range(*ctx.prog, toks, st.first, i);
    if (cb)
      info.add(cb, {loc(ctx.file->path, toks[i].line) +
                    ": declared as hash-/pointer-ordered container"},
               toks[i].text);
    if (info.mask) state[toks[i].text] = info.to_val();
  }
}

/// `v.push_back(x)` / `v.insert(x)` / … accumulate element taint into the
/// container variable (weak update).
void handle_accumulators(FnCtx& ctx, State& state, const Stmt& st) {
  static const std::set<std::string> kAccum = {
      "push_back", "emplace_back", "insert", "emplace", "push", "append"};
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  for (std::size_t i = st.first; i + 3 < st.last; ++i) {
    if (in_nested_body(*ctx.file, ctx.fn_idx, i)) continue;
    if (toks[i].kind != TokKind::kIdent) continue;
    if (!is_punct(toks[i + 1], ".") && !is_punct(toks[i + 1], "->")) continue;
    if (toks[i + 2].kind != TokKind::kIdent || !kAccum.count(toks[i + 2].text))
      continue;
    if (!is_punct(toks[i + 3], "(")) continue;
    std::size_t close = match_paren(toks, i + 3);
    if (close == std::string::npos || close > st.last) close = st.last;
    const ExprInfo info = expr_taint(ctx, state, i + 4, close);
    if (info.mask == 0) continue;
    Val add = info.to_val();
    join_val(state[toks[i].text], add);
  }
}

void transfer(FnCtx& ctx, State& state, const Stmt& st) {
  if (st.first >= st.last) return;
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  if (handle_range_for(ctx, state, st)) return;
  if (handle_cleanser(ctx, state, st)) return;
  scan_sinks(ctx, state, st);
  if (is_ident(toks[st.first], "return")) {
    const ExprInfo info = expr_taint(ctx, state, st.first + 1, st.last);
    ctx.sum->ret_taint |= info.mask & ~kParamMask;
    for (const auto& [bit, ch] : info.chains)
      if ((bit & kParamMask) == 0) ctx.sum->ret_chains.emplace(bit, ch);
    for_each_bit(info.mask & kParamMask, [&](Taint bit) {
      int param = 0;
      for (Taint b = bit >> 9; b != 0; b >>= 1) ++param;
      ctx.sum->param_to_ret |= 1u << param;
    });
    return;
  }
  handle_assign_or_decl(ctx, state, st);
  handle_accumulators(ctx, state, st);
  // Evaluate the statement once as a whole expression so bare call
  // statements (`write_header(os, prov);`) still apply callee summaries —
  // that is where param→sink hits fire. Overlap with the handlers above
  // is harmless: findings and sink hits dedup by key/site.
  (void)expr_taint(ctx, state, st.first, st.last);
}

// ---------------------------------------------------------------------------
// Per-function analysis
// ---------------------------------------------------------------------------

/// Initial entry state + stream/metric variable classes for one function.
void setup_function(FnCtx& ctx, const FunctionCfg& fn, State* entry) {
  const std::vector<Token>& toks = ctx.file->lex.tokens;
  // Parameter list: for named functions the '(' follows the name; for
  // lambdas it follows the capture list (if present at all).
  std::size_t open = std::string::npos;
  if (fn.is_lambda) {
    const std::size_t cap_close = match_brace(toks, fn.header_begin);
    if (cap_close != std::string::npos && cap_close + 1 < toks.size() &&
        is_punct(toks[cap_close + 1], "("))
      open = cap_close + 1;
  } else {
    for (std::size_t i = fn.header_begin;
         i < fn.body_begin && i < toks.size(); ++i)
      if (is_punct(toks[i], "(")) {
        open = i;
        break;
      }
  }
  if (open != std::string::npos) {
    std::vector<std::pair<std::size_t, std::size_t>> segs;
    split_args(toks, open, toks.size(), &segs, /*template_angles=*/true);
    for (std::size_t j = 0; j < segs.size(); ++j) {
      const auto [s, e] = segs[j];
      // Parameter name: the ident before '=' (defaulted) or the last ident.
      std::string pname;
      for (std::size_t k = e; k-- > s;) {
        if (is_punct(toks[k], "=")) {
          pname.clear();
          continue;
        }
        if (toks[k].kind == TokKind::kIdent && pname.empty()) {
          pname = toks[k].text;
          break;
        }
      }
      if (pname.empty()) continue;
      Val v;
      if (!fn.is_lambda && j < static_cast<std::size_t>(kMaxParams))
        v.mask |= param_bit(static_cast<int>(j));
      const Taint cb = container_bits_in_range(*ctx.prog, toks, s, e);
      if (cb) {
        v.mask |= cb;
        v.chains.emplace(cb & kUnorderedCont ? kUnorderedCont : kPtrKeyedCont,
                         Chain{loc(ctx.file->path, toks[s].line) +
                               ": parameter '" + pname +
                               "' is a hash-/pointer-ordered container"});
      }
      if (v.mask) (*entry)[pname] = std::move(v);
      if (range_has_ident(toks, s, e, ostream_type_names()))
        ctx.ostream_vars.insert(pname);
      if (range_has_ident(toks, s, e, metric_type_names()))
        ctx.metric_vars.insert(pname);
    }
  }
  // Local declarations of stream / metric handles (flow-insensitive: the
  // class of a name holds for the whole function).
  for (const BasicBlock& bb : fn.blocks)
    for (const Stmt& st : bb.stmts) {
      const bool has_stream =
          range_has_ident(toks, st.first, st.last, ostream_type_names());
      const bool has_metric =
          range_has_ident(toks, st.first, st.last, metric_type_names());
      if (!has_stream && !has_metric) continue;
      for (std::size_t i = st.first; i < st.last; ++i)
        if (is_decl_name_at(toks, st, i)) {
          if (has_stream) ctx.ostream_vars.insert(toks[i].text);
          if (has_metric) ctx.metric_vars.insert(toks[i].text);
        }
    }
}

bool masks_equal(const State& a, const State& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end() && ib != b.end(); ++ia, ++ib)
    if (ia->first != ib->first || ia->second.mask != ib->second.mask)
      return false;
  return ia == a.end() && ib == b.end();
}

/// Run the block-level fixpoint for one function, then a reporting sweep
/// over the stable states. Returns the function's summary; findings (when
/// `findings` is non-null) go through the program-wide dedup set.
Summary analyze_function(const ProgramCtx& prog, const FileCfg& file, int fi,
                         std::vector<Finding>* findings,
                         std::set<std::string>* emitted) {
  const FunctionCfg& fn = file.functions[fi];
  Summary scratch;
  FnCtx ctx;
  ctx.prog = &prog;
  ctx.file = &file;
  ctx.fn_idx = fi;
  ctx.owner = owner_name(file, fi);
  ctx.sum = &scratch;
  ctx.findings = nullptr;
  ctx.emitted = nullptr;

  State entry;
  setup_function(ctx, fn, &entry);

  const int n = static_cast<int>(fn.blocks.size());
  std::vector<std::vector<int>> preds(n);
  for (int b = 0; b < n; ++b)
    for (const int s : fn.blocks[b].succs)
      if (s >= 0 && s < n) preds[s].push_back(b);

  std::vector<State> out_state(n);
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < n + 8) {
    changed = false;
    for (int b = 0; b < n; ++b) {
      State state;
      if (b == fn.entry) state = entry;
      for (const int p : preds[b])
        for (const auto& [name, val] : out_state[p]) join_val(state[name], val);
      for (const Stmt& st : fn.blocks[b].stmts) transfer(ctx, state, st);
      if (!masks_equal(state, out_state[b])) {
        out_state[b] = std::move(state);
        changed = true;
      }
    }
  }

  // Reporting sweep over the stable states — this builds the real summary
  // (the fixpoint rounds above only stabilized the block states).
  Summary sum;
  ctx.sum = &sum;
  ctx.findings = findings;
  ctx.emitted = emitted;
  for (int b = 0; b < n; ++b) {
    State state;
    if (b == fn.entry) state = entry;
    for (const int p : preds[b])
      for (const auto& [name, val] : out_state[p]) join_val(state[name], val);
    for (const Stmt& st : fn.blocks[b].stmts) transfer(ctx, state, st);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Whole-program driver
// ---------------------------------------------------------------------------

bool exempt_path(const std::string& path) {
  return ends_with(path, "src/obs/clock.cpp") ||
         ends_with(path, "src/obs/clock.hpp") ||
         ends_with(path, "src/common/thread_pool.cpp") ||
         ends_with(path, "src/common/thread_pool.hpp");
}

/// Join `s` into `into`; true if the convergence signature (masks + sink
/// sites) grew. Chains never count.
bool join_summary(Summary& into, const Summary& s) {
  bool changed = false;
  if ((into.ret_taint | s.ret_taint) != into.ret_taint) {
    into.ret_taint |= s.ret_taint;
    changed = true;
  }
  if ((into.param_to_ret | s.param_to_ret) != into.param_to_ret) {
    into.param_to_ret |= s.param_to_ret;
    changed = true;
  }
  for (const auto& [bit, ch] : s.ret_chains) into.ret_chains.emplace(bit, ch);
  for (const SinkHit& h : s.param_sinks) {
    bool present = false;
    for (const SinkHit& have : into.param_sinks)
      if (have.kind == h.kind && have.param == h.param &&
          have.file == h.file && have.line == h.line) {
        present = true;
        break;
      }
    if (!present) {
      into.param_sinks.push_back(h);
      changed = true;
    }
  }
  return changed;
}

struct Analysis {
  ProgramCtx prog;
  std::map<std::string, Summary> summaries;
  std::vector<Finding> findings;

  void run(const std::vector<FileCfg>& files, const AnalyzeOptions& opts,
           bool report);
};

void Analysis::run(const std::vector<FileCfg>& files,
                   const AnalyzeOptions& opts, bool report) {
  prog.files = &files;
  prog.summaries = &summaries;

  // Pre-pass 1: type aliases for unordered / pointer-keyed containers
  // (`using DetectedFaults = std::unordered_map<const WeightStore*, …>`).
  for (const FileCfg& f : files) {
    const std::vector<Token>& toks = f.lex.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!is_ident(toks[i], "using") || toks[i + 1].kind != TokKind::kIdent ||
          !is_punct(toks[i + 2], "="))
        continue;
      std::size_t end = i + 3;
      while (end < toks.size() && !is_punct(toks[end], ";")) ++end;
      for (std::size_t j = i + 3; j < end; ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        if (toks[j].text.rfind("unordered_", 0) == 0)
          prog.unordered_aliases.insert(toks[i + 1].text);
        if (ptr_keyed_at(toks, j, end))
          prog.ptr_aliases.insert(toks[i + 1].text);
      }
      i = end;
    }
  }

  // Pre-pass 2: the function universe (exempt files own their sources by
  // design and contribute neither summaries nor findings).
  struct FnRef {
    int file = 0;
    int fn = 0;
    std::string name;
  };
  std::vector<FnRef> fns;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    if (opts.apply_path_exemptions && exempt_path(files[fi].path)) continue;
    for (std::size_t i = 0; i < files[fi].functions.size(); ++i) {
      if (files[fi].functions[i].is_lambda) continue;
      prog.known_fns.insert(files[fi].functions[i].name);
      fns.push_back({static_cast<int>(fi), static_cast<int>(i),
                     files[fi].functions[i].name});
    }
  }
  for (const FnRef& r : fns) summaries.emplace(r.name, Summary{});

  // Callers index (who must be re-analyzed when a summary grows).
  const CallGraph cg = build_call_graph(files);
  std::map<std::string, std::set<std::size_t>> callers;
  for (std::size_t k = 0; k < fns.size(); ++k) {
    const auto it = cg.callees.find(fns[k].name);
    if (it == cg.callees.end()) continue;
    for (const std::string& callee : it->second) callers[callee].insert(k);
  }

  // Summary fixpoint over the call graph.
  std::deque<std::size_t> work;
  std::vector<bool> queued(fns.size(), true);
  for (std::size_t k = 0; k < fns.size(); ++k) work.push_back(k);
  std::size_t steps = 0;
  const std::size_t cap = (fns.size() + 1) * 40;
  while (!work.empty() && steps++ < cap) {
    const std::size_t k = work.front();
    work.pop_front();
    queued[k] = false;
    const Summary s = analyze_function(
        prog, files[static_cast<std::size_t>(fns[k].file)], fns[k].fn,
        nullptr, nullptr);
    if (join_summary(summaries[fns[k].name], s)) {
      const auto it = callers.find(fns[k].name);
      if (it != callers.end())
        for (const std::size_t c : it->second)
          if (!queued[c]) {
            queued[c] = true;
            work.push_back(c);
          }
    }
  }

  if (!report) return;

  // Reporting pass: every function (lambdas included — their local
  // sources still reach local sinks) against the converged summaries.
  std::set<std::string> emitted;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    if (opts.apply_path_exemptions && exempt_path(files[fi].path)) continue;
    for (std::size_t i = 0; i < files[fi].functions.size(); ++i)
      (void)analyze_function(prog, files[fi], static_cast<int>(i), &findings,
                             &emitted);
  }

  // In-source suppressions, per finding file.
  std::map<std::string, refit::lint::Suppressions> sups;
  for (const FileCfg& f : files)
    sups.emplace(f.path,
                 refit::lint::parse_suppressions(f.lex.comments, "refit-det:"));
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  const auto it = sups.find(f.file);
                                  return it != sups.end() &&
                                         it->second.allows(f.rule, f.line);
                                }),
                 findings.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.detail < b.detail;
            });
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string Finding::key() const { return rule + " " + file + " " + detail; }

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"nondet-seed-provenance",
       "an RNG stream is seeded/derived from a nondeterministic value "
       "(std::random_device, time(), pointer bits, …), or an entropy-derived "
       "value reaches any deterministic sink — never baselined"},
      {"unordered-iteration-to-output",
       "unordered_map/unordered_set iteration order reaches serialized "
       "output, a golden hash, or a metric sample"},
      {"pointer-order-dependence",
       "pointer-keyed container order or a pointer-to-integer cast reaches "
       "a deterministic sink (addresses vary run to run)"},
      {"wallclock-to-output",
       "a raw wall-clock read outside the obs::Clock seam reaches a "
       "deterministic sink"},
      {"threadcount-value-dependence",
       "hardware_concurrency / thread identity / the kFast reduction mode "
       "reaches a deterministic sink — results must not depend on "
       "REFIT_THREADS"},
  };
  return kRules;
}

CallGraph build_call_graph(const std::vector<refit::cfg::FileCfg>& files) {
  std::set<std::string> known;
  for (const FileCfg& f : files)
    for (const FunctionCfg& fn : f.functions)
      if (!fn.is_lambda) known.insert(fn.name);

  CallGraph cg;
  for (const FileCfg& f : files) {
    const std::vector<Token>& toks = f.lex.tokens;
    for (std::size_t i = 0; i < f.functions.size(); ++i) {
      const FunctionCfg& fn = f.functions[i];
      const std::string owner = owner_name(f, static_cast<int>(i));
      if (!fn.is_lambda) cg.callees.emplace(owner, std::set<std::string>{});
      for (std::size_t k = fn.body_begin;
           k + 1 < fn.body_end && k + 1 < toks.size(); ++k) {
        if (toks[k].kind != TokKind::kIdent || !is_punct(toks[k + 1], "("))
          continue;
        if (k > 0 && (is_punct(toks[k - 1], ".") ||
                      is_punct(toks[k - 1], "->")))
          continue;  // member calls resolve elsewhere
        if (known.count(toks[k].text)) cg.callees[owner].insert(toks[k].text);
      }
    }
  }
  return cg;
}

std::map<std::string, Summary> compute_summaries(
    const std::vector<refit::cfg::FileCfg>& files,
    const AnalyzeOptions& opts) {
  Analysis a;
  a.run(files, opts, /*report=*/false);
  return std::move(a.summaries);
}

std::vector<Finding> analyze_program(
    const std::vector<refit::cfg::FileCfg>& files,
    const AnalyzeOptions& opts) {
  Analysis a;
  a.run(files, opts, /*report=*/true);
  return std::move(a.findings);
}

Baseline Baseline::parse(std::istream& is) {
  Baseline b;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::size_t stop = line.find_last_not_of(" \t\r");
    line = line.substr(start, stop - start + 1);
    if (line.empty() || line[0] == '#') continue;
    b.keys.insert(line);
  }
  return b;
}

RatchetResult apply_baseline(const std::vector<Finding>& findings,
                             const Baseline& baseline) {
  RatchetResult rr;
  std::set<std::string> matched;
  for (const Finding& f : findings) {
    if (baseline.covers(f)) {
      rr.frozen.push_back(f);
      matched.insert(f.key());
    } else {
      rr.fresh.push_back(f);
    }
  }
  for (const std::string& k : baseline.keys)
    if (!matched.count(k)) rr.stale.push_back(k);
  return rr;
}

}  // namespace refit::det
