// refit-det — whole-program determinism taint analysis over the shared
// lexer (tools/common/lexer.hpp) and CFG builder (tools/common/cfg.hpp).
//
// The project's determinism contract (docs/determinism.md) says a run is
// reproducible from its config seed at any REFIT_THREADS: every RNG stream
// funnels through refit::Rng, wall-clock reads go through the obs::Clock
// seam, and serialized artifacts (CSV/JSON rows, checkpoints, golden
// hashes, metric samples) never depend on hash-map iteration order,
// pointer values, or the worker-thread count. refit-det checks that
// contract statically: it marks *sources* of nondeterminism, propagates
// their taint through assignments, returns and call sites (interprocedural
// per-function summaries, computed to a fixpoint over the call graph), and
// reports only when a tainted value reaches a *deterministic sink*.
//
//   nondet-seed-provenance       any tainted value reaches an RNG seed
//                                (Rng construction, .seed(), .split(),
//                                set_state(), srand, mt19937), or an
//                                entropy-derived value (std::random_device,
//                                getpid, time()) reaches any sink
//   unordered-iteration-to-output  unordered_map/unordered_set iteration
//                                order reaches serialized output / a golden
//                                hash / a metric sample
//   pointer-order-dependence     pointer-keyed container order or a
//                                pointer-to-integer cast reaches a sink
//   wallclock-to-output          a raw wall-clock read (outside the
//                                obs::Clock seam) reaches a sink
//   threadcount-value-dependence hardware_concurrency / thread-id /
//                                kFast-reduction values reach a sink
//
// Findings ratchet against tools/refit_det/baseline.txt exactly like
// refit-flow: keys are (rule, file, detail) — never line numbers.
// nondet-seed-provenance is never baselined (scripts/det_baseline.sh
// rejects it): a nondeterministic seed breaks every downstream guarantee.
// In-source suppression uses the shared syntax with this tool's tag:
// `// refit-det: allow(rule)`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/cfg.hpp"

namespace refit::det {

// ---------------------------------------------------------------------------
// Taint domain
// ---------------------------------------------------------------------------

/// A taint mask. Low bits are the rule-triggering taints; kUnorderedCont /
/// kPtrKeyedCont mark values that *are* hash-ordered containers (holding
/// one is harmless — iterating it converts the bit into kUnorderedIter /
/// kPointerOrder); bits 8..8+kMaxParams-1 are pseudo-taints standing for
/// "the value of parameter i", the currency of function summaries.
using Taint = std::uint32_t;

inline constexpr Taint kWallclock = 1u << 0;
inline constexpr Taint kNondetSeed = 1u << 1;
inline constexpr Taint kUnorderedIter = 1u << 2;
inline constexpr Taint kPointerOrder = 1u << 3;
inline constexpr Taint kThreadCount = 1u << 4;
inline constexpr Taint kUnorderedCont = 1u << 5;
inline constexpr Taint kPtrKeyedCont = 1u << 6;

/// The five taints that trigger findings at a sink.
inline constexpr Taint kRuleMask = kWallclock | kNondetSeed | kUnorderedIter |
                                   kPointerOrder | kThreadCount;

/// Parameters tracked per function; later parameters are ignored
/// (conservative loss of precision, not soundness of the ratchet).
inline constexpr int kMaxParams = 8;
inline constexpr Taint param_bit(int i) { return Taint{1} << (8 + i); }
inline constexpr Taint kParamMask = ((Taint{1} << kMaxParams) - 1) << 8;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One determinism violation. `detail` is the stable identity —
/// "<function>:<subject>" where subject is the variable (or callee) that
/// carried the taint into the sink — the baseline keys on. `chain` is the
/// source-to-sink path --explain prints, one "file:line: step" per hop.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string detail;
  std::vector<std::string> chain;

  /// Baseline key: "<rule> <file> <detail>".
  [[nodiscard]] std::string key() const;
};

/// Name + one-line description, for --list-rules and docs.
struct RuleInfo {
  const char* name;
  const char* description;
};

/// All rules refit-det knows, in report order.
const std::vector<RuleInfo>& rules();

// ---------------------------------------------------------------------------
// Interprocedural machinery (public so the unit tests can probe it)
// ---------------------------------------------------------------------------

/// What kind of deterministic sink a tainted value reached.
enum class SinkKind { kOutput, kHash, kMetric, kRngSeed };

/// A sink inside a function that parameter `param`'s value reaches.
/// `steps` is the intra-function chain fragment (param → sink); call sites
/// prepend their argument's chain when applying the summary.
struct SinkHit {
  SinkKind kind = SinkKind::kOutput;
  int param = 0;
  std::string file;
  int line = 0;
  std::string subject;  ///< variable name at the sink (detail subject)
  std::vector<std::string> steps;
};

/// Per-function summary, keyed by unqualified name (same-named functions
/// are joined — conservative). Fixpoint convergence compares only the
/// masks and the (kind, param, file, line) sink signature, never chains.
struct Summary {
  /// Taints the return value carries (rule bits and container bits both).
  Taint ret_taint = 0;
  std::uint32_t param_to_ret = 0;  ///< bit i: arg i flows to the return
  std::vector<SinkHit> param_sinks;
  std::map<Taint, std::vector<std::string>> ret_chains;  ///< per-bit, first-wins
};

/// name → set of callee names (only calls to functions defined somewhere
/// in the analyzed file set; unknown externals are not edges).
struct CallGraph {
  std::map<std::string, std::set<std::string>> callees;
};

[[nodiscard]] CallGraph build_call_graph(
    const std::vector<refit::cfg::FileCfg>& files);

struct AnalyzeOptions {
  /// Exempt the files that *own* a nondeterminism source by design:
  /// src/obs/clock.{cpp,hpp} (the wall-clock seam) and
  /// src/common/thread_pool.{cpp,hpp} (the REFIT_THREADS config owner).
  bool apply_path_exemptions = true;
};

/// The whole-program summary fixpoint, without the reporting pass.
[[nodiscard]] std::map<std::string, Summary> compute_summaries(
    const std::vector<refit::cfg::FileCfg>& files, const AnalyzeOptions& opts);

/// Run the full analysis: summary fixpoint, then a reporting sweep over
/// every function. Findings are sorted by (file, line, rule, detail);
/// in-source `refit-det:` suppressions are already applied.
[[nodiscard]] std::vector<Finding> analyze_program(
    const std::vector<refit::cfg::FileCfg>& files, const AnalyzeOptions& opts);

// ---------------------------------------------------------------------------
// Baseline ratchet (same shape and semantics as refit-flow's)
// ---------------------------------------------------------------------------

/// The checked-in debt freeze: one `<rule> <file> <detail>` key per line,
/// `#` comments and blank lines ignored.
struct Baseline {
  std::set<std::string> keys;

  [[nodiscard]] static Baseline parse(std::istream& is);
  [[nodiscard]] bool covers(const Finding& f) const {
    return keys.count(f.key()) > 0;
  }
};

/// Splits findings into `fresh` (fail CI) and `frozen` (baselined), and
/// returns the baseline keys that no longer match anything (stale —
/// regenerate with scripts/det_baseline.sh).
struct RatchetResult {
  std::vector<Finding> fresh;
  std::vector<Finding> frozen;
  std::vector<std::string> stale;
};
[[nodiscard]] RatchetResult apply_baseline(const std::vector<Finding>& findings,
                                           const Baseline& baseline);

}  // namespace refit::det
