// refit-det CLI: the whole-program determinism analysis stage (see
// det.hpp for the rule catalogue). Scans the given roots, builds the
// per-function CFGs for every translation unit, runs the interprocedural
// taint analysis over the whole file set at once, and diffs the findings
// against the checked-in baseline ratchet.
//
// Usage:
//   refit_det [options] [<file-or-dir>...]
//
//   --list-rules              print the rule catalogue and exit
//   --json                    machine output: {"findings": [...],
//                             "stale_baseline": [...]} (human summary on
//                             stderr); each finding carries a `baselined`
//                             flag and its source→sink `chain`
//   --baseline FILE           diff findings against FILE; frozen entries
//                             do not fail the run, stale entries warn
//   --write-baseline FILE     write the current findings as a sorted
//                             baseline (with a header comment) and exit 0
//   --explain                 print the full source→sink chain under each
//                             fresh finding, one indented step per hop
//
// With no paths, the determinism-contract roots are scanned: src bench
// examples (tests and tools construct nondeterminism on purpose).
//
// Exit status: 0 = clean (or frozen-only), 1 = fresh findings,
// 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "det.hpp"

namespace fs = std::filesystem;

namespace {

bool analyzable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 ||
         name == ".git" || name == "third_party";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (analyzable_extension(root)) out.push_back(root);
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && analyzable_extension(it->path()))
      out.push_back(it->path());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The roots scanned when the CLI is invoked bare (matches check.sh/CI).
/// tests/ and tools/ are deliberately absent: tests construct
/// nondeterminism on purpose, and the analyzers describe it in strings.
const char* const kDefaultRoots[] = {"src", "bench", "examples"};

int usage() {
  std::cerr << "usage: refit_det [--list-rules] [--json] [--baseline FILE]\n"
               "                 [--write-baseline FILE] [--explain]\n"
               "                 [<file-or-dir>...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool json = false;
  bool explain = false;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](std::string& out) -> bool {
      if (i + 1 >= args.size()) return false;
      out = args[++i];
      return true;
    };
    if (a == "--list-rules") {
      for (const auto& r : refit::det::rules())
        std::cout << r.name << "\n    " << r.description << "\n";
      return 0;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--explain") {
      explain = true;
    } else if (a == "--baseline") {
      if (!value(baseline_path)) return usage();
    } else if (a == "--write-baseline") {
      if (!value(write_baseline_path)) return usage();
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      roots.push_back(a);
    }
  }

  if (roots.empty())
    for (const char* r : kDefaultRoots)
      if (fs::exists(r)) roots.emplace_back(r);
  if (roots.empty()) {
    std::cerr << "refit_det: no inputs (run from the repo root or pass "
                 "paths)\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const std::string& a : roots) {
    if (!fs::exists(a)) {
      std::cerr << "refit_det: no such file or directory: " << a << "\n";
      return 2;
    }
    collect(a, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // The whole file set is analyzed at once: taint crosses translation
  // units through the per-function summaries.
  std::vector<refit::cfg::FileCfg> cfgs;
  cfgs.reserve(files.size());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "refit_det: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    cfgs.push_back(refit::cfg::build_file_cfg(f.generic_string(), ss.str()));
  }

  refit::det::AnalyzeOptions opts;
  std::vector<refit::det::Finding> findings =
      refit::det::analyze_program(cfgs, opts);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "refit_det: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    out << "# refit-det baseline — frozen, deliberately-kept findings.\n"
           "# One `<rule> <file> <detail>` key per line; `#` comments and\n"
           "# blank lines are ignored. Regenerate with "
           "scripts/det_baseline.sh.\n"
           "# nondet-seed-provenance entries are never accepted here.\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const auto& f : findings) keys.push_back(f.key());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (const std::string& k : keys) out << k << "\n";
    std::cerr << "refit_det: wrote " << keys.size() << " baseline entries "
              << "to " << write_baseline_path << "\n";
    return 0;
  }

  refit::det::Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "refit_det: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    baseline = refit::det::Baseline::parse(in);
  }
  const refit::det::RatchetResult rr =
      refit::det::apply_baseline(findings, baseline);

  std::ostream& human = json ? std::cerr : std::cout;
  if (json) {
    std::cout << "{\n  \"findings\": [";
    bool first = true;
    auto emit = [&](const refit::det::Finding& f, bool frozen) {
      std::cout << (first ? "\n" : ",\n") << "    {\"file\": \""
                << json_escape(f.file) << "\", \"line\": " << f.line
                << ", \"rule\": \"" << json_escape(f.rule)
                << "\", \"message\": \"" << json_escape(f.message)
                << "\", \"detail\": \"" << json_escape(f.detail)
                << "\", \"baselined\": " << (frozen ? "true" : "false")
                << ", \"chain\": [";
      for (std::size_t i = 0; i < f.chain.size(); ++i)
        std::cout << (i ? ", " : "") << "\"" << json_escape(f.chain[i])
                  << "\"";
      std::cout << "]}";
      first = false;
    };
    for (const auto& f : rr.fresh) emit(f, false);
    for (const auto& f : rr.frozen) emit(f, true);
    std::cout << (first ? "],\n" : "\n  ],\n") << "  \"stale_baseline\": [";
    for (std::size_t i = 0; i < rr.stale.size(); ++i)
      std::cout << (i ? ", " : "") << "\"" << json_escape(rr.stale[i]) << "\"";
    std::cout << "]\n}\n";
  } else {
    for (const auto& f : rr.fresh) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (explain)
        for (std::size_t i = 0; i < f.chain.size(); ++i)
          std::cout << "    #" << i + 1 << " " << f.chain[i] << "\n";
    }
  }

  for (const std::string& k : rr.stale)
    human << "refit_det: warning: stale baseline entry (regenerate with "
             "scripts/det_baseline.sh): "
          << k << "\n";

  if (rr.fresh.empty()) {
    human << "refit-det: " << files.size() << " files clean";
    if (!rr.frozen.empty())
      human << " (" << rr.frozen.size() << " baselined finding(s) frozen)";
    human << "\n";
    return 0;
  }
  std::map<std::string, std::size_t> per_rule;
  for (const auto& f : rr.fresh) ++per_rule[f.rule];
  human << "refit-det: " << rr.fresh.size() << " fresh finding(s) in "
        << files.size() << " files:";
  for (const auto& [rule, count] : per_rule)
    human << " " << rule << "=" << count;
  human << "\n(suppress a deliberate use with `// refit-det: "
           "allow(<rule>)` on or above the line, or freeze it in "
           "tools/refit_det/baseline.txt with a comment — "
           "nondet-seed-provenance is never baselined)\n";
  return 1;
}
