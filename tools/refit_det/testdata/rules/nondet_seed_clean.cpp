// refit-det fixture: every stream derives from the funneled config seed —
// the root Rng takes cfg.seed, per-layer streams come from Rng::split()
// with stable salts. Reproducible from one number; no findings.
void build_streams(const Config& cfg) {
  Rng root(cfg.seed);
  for (std::size_t layer = 0; layer < cfg.layers; ++layer) {
    Rng stream = root.split(layer);
    init_weights(stream);
  }
}
