// refit-det fixture: unordered_map iteration order reaches two sinks —
// a CSV row stream and a rolling hash. Both orders are hash-seed- and
// insertion-dependent, so neither artifact is stable across runs.
#include <unordered_map>

void dump_counts(std::ostream& os) {
  std::unordered_map<int, double> counts = gather();
  for (const auto& kv : counts) {
    os << kv.first << "," << kv.second << "\n";  // EXPECT-DET: unordered-iteration-to-output
  }
}

std::uint64_t digest(const std::unordered_map<int, double>& counts) {
  std::uint64_t h = 0;
  for (const auto& kv : counts) {
    h = hash_mix(h, kv.second);  // EXPECT-DET: unordered-iteration-to-output
  }
  return h;
}
