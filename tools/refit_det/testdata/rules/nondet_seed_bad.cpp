// refit-det fixture: a std::random_device read flows through two helper
// functions into an Rng stream constructor. The finding lands at the seed
// sink; --explain reproduces the whole source→sink call chain (this is
// the fixture the explain-chain unit test pins).
#include <random>

unsigned device_entropy() {
  std::random_device entropy;
  return entropy();
}

unsigned mix_bits(unsigned raw) { return raw * 2654435761u; }

void build_stream() {
  unsigned raw = device_entropy();
  unsigned salt = mix_bits(raw);
  Rng rng(salt);  // EXPECT-DET: nondet-seed-provenance
}
