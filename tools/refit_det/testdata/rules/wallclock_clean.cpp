// refit-det fixture: timing routed through the obs::Clock seam. The seam
// is the one sanctioned wall-clock reader (tests swap in ManualClock), so
// values derived from it are not flagged.
void write_row(std::ostream& os, const Clock& clock) {
  const std::uint64_t t_ns = clock.now_ns();
  os << t_ns << "\n";
}
