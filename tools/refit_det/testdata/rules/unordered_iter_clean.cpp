// refit-det fixture: the deterministic way to serialize an unordered
// container — extract the keys, sort them, then emit. std::sort cleanses
// the iteration-order taint, so the rows are byte-stable.
#include <unordered_map>

void dump_sorted(std::ostream& os) {
  std::unordered_map<int, double> counts = gather();
  std::vector<int> keys;
  for (const auto& kv : counts) {
    keys.push_back(kv.first);
  }
  std::sort(keys.begin(), keys.end());
  for (const int k : keys) {
    os << k << "," << counts.at(k) << "\n";
  }
}
