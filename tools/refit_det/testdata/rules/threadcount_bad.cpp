// refit-det fixture: std::thread::hardware_concurrency() stored into a
// provenance struct, returned, and serialized — plus a direct metric
// sample of the same value. Deterministic artifacts must be identical at
// any REFIT_THREADS, so the worker count cannot appear in them.
#include <thread>

struct Provenance {
  unsigned hardware_threads = 0;
};

Provenance collect_provenance() {
  Provenance p;
  p.hardware_threads = std::thread::hardware_concurrency();
  return p;
}

void write_header(std::ostream& os) {
  Provenance p = collect_provenance();
  os << p.hardware_threads << "\n";  // EXPECT-DET: threadcount-value-dependence
}

void sample_workers(Gauge& workers) {
  workers.set(std::thread::hardware_concurrency());  // EXPECT-DET: threadcount-value-dependence
}
