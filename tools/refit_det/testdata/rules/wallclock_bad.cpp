// refit-det fixture: a raw std::chrono::steady_clock read (outside the
// obs::Clock seam) crosses a function boundary and lands in a serialized
// row — the artifact differs on every run.
#include <chrono>

double elapsed_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  spin_workload();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void write_row(std::ostream& os) {
  os << elapsed_ms() << "\n";  // EXPECT-DET: wallclock-to-output
}
