// refit-det fixture: a std::map keyed by raw pointers iterates in address
// order, and addresses vary run to run under ASLR — the serialized rows
// are not reproducible even though the map itself is "ordered".
#include <map>

void dump_hits(std::ostream& os) {
  std::map<const Tile*, int> hits = gather_hits();
  for (const auto& kv : hits) {
    os << kv.second << "\n";  // EXPECT-DET: pointer-order-dependence
  }
}
