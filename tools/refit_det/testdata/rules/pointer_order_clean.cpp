// refit-det fixture: the same aggregation keyed by stable tile indices —
// std::map<int, …> iterates in index order, which is identical on every
// run. No findings.
#include <map>

void dump_hits(std::ostream& os) {
  std::map<int, int> hits = gather_hits();
  for (const auto& kv : hits) {
    os << kv.first << "," << kv.second << "\n";
  }
}
