// refit-det fixture: the header records the *configured* value handed in
// by the caller, not a machine query — identical output at any
// REFIT_THREADS setting. No findings.
void write_header(std::ostream& os, unsigned configured_threads) {
  os << configured_threads << "\n";
}

void write_step_count(std::ostream& os, const Config& cfg) {
  os << cfg.steps * cfg.batch << "\n";
}
