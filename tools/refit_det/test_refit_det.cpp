// Expected-findings self-test for refit-det, mirroring refit-flow's
// harness: every fixture under testdata/rules/ is analyzed and the
// produced (line, rule) pairs must match the fixture's annotations
// exactly —
//
//   // EXPECT-DET: <rule>        finding on this line
//   // EXPECT-DET@<N>: <rule>    finding reported at line N
//
// A fixture with no annotations asserts the analyzer is silent on it, so
// clean fixtures guard against false positives as much as the bad ones
// guard against false negatives.
//
// On top of the fixture harness, the interprocedural machinery is probed
// directly: call-graph construction, summary propagation across two call
// hops, termination on recursion, and the --explain source→sink chain.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "det.hpp"
#include "gtest/gtest.h"

namespace fs = std::filesystem;

namespace {

using LineRule = std::pair<int, std::string>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::multiset<LineRule> parse_expectations(const std::string& content) {
  std::multiset<LineRule> want;
  const std::regex at_line(R"(EXPECT-DET@(\d+):\s*([a-z0-9-]+))");
  const std::regex same_line(R"(EXPECT-DET:\s*([a-z0-9-]+))");
  std::istringstream ss(content);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, at_line))
      want.emplace(std::stoi(m[1]), m[2]);
    else if (std::regex_search(line, m, same_line))
      want.emplace(lineno, m[1]);
  }
  return want;
}

std::vector<fs::path> fixtures(const std::string& subdir,
                               const std::string& ext) {
  std::vector<fs::path> out;
  const fs::path dir = fs::path(REFIT_DET_TESTDATA_DIR) / subdir;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ext)
      out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<refit::det::Finding> analyze(const std::string& path,
                                         const std::string& content) {
  std::vector<refit::cfg::FileCfg> files;
  files.push_back(refit::cfg::build_file_cfg(path, content));
  return refit::det::analyze_program(files, refit::det::AnalyzeOptions{});
}

}  // namespace

TEST(RefitDet, TestdataDirHasFixtures) {
  EXPECT_GE(fixtures("rules", ".cpp").size(), 10u)
      << "testdata/rules/ should hold a bad and a clean fixture per rule";
}

TEST(RefitDet, FixturesProduceExactlyTheAnnotatedFindings) {
  for (const fs::path& p : fixtures("rules", ".cpp")) {
    SCOPED_TRACE(p.filename().string());
    const std::string content = read_file(p);
    const std::multiset<LineRule> want = parse_expectations(content);

    std::multiset<LineRule> got;
    for (const auto& f : analyze(p.generic_string(), content))
      got.emplace(f.line, f.rule);

    for (const auto& [line, rule] : want)
      EXPECT_TRUE(got.count({line, rule}))
          << "expected finding [" << rule << "] at line " << line
          << " was not produced";
    for (const auto& [line, rule] : got)
      EXPECT_TRUE(want.count({line, rule}))
          << "unexpected finding [" << rule << "] at line " << line;
  }
}

TEST(RefitDet, EveryRuleIsCoveredByAFixture) {
  std::set<std::string> exercised;
  for (const fs::path& p : fixtures("rules", ".cpp"))
    for (const auto& [line, rule] : parse_expectations(read_file(p)))
      exercised.insert(rule);
  for (const auto& r : refit::det::rules())
    EXPECT_TRUE(exercised.count(r.name))
        << "rule '" << r.name << "' has no expected-findings fixture";
}

TEST(RefitDet, CallGraphConstruction) {
  const std::string src =
      "// impl\n"
      "int c() { return 3; }\n"
      "int b() { return c() + c(); }\n"
      "int a() { return b(); }\n"
      "int d() { return qsort(nullptr, 0, 0, nullptr); }\n";
  std::vector<refit::cfg::FileCfg> files;
  files.push_back(refit::cfg::build_file_cfg("src/x.cpp", src));
  const refit::det::CallGraph cg = refit::det::build_call_graph(files);
  ASSERT_TRUE(cg.callees.count("a"));
  EXPECT_EQ(cg.callees.at("a"), (std::set<std::string>{"b"}));
  EXPECT_EQ(cg.callees.at("b"), (std::set<std::string>{"c"}));
  EXPECT_TRUE(cg.callees.at("c").empty());
  // Externals (qsort) are not edges: only functions defined in the set.
  EXPECT_TRUE(cg.callees.at("d").empty());
}

TEST(RefitDet, SummaryPropagationTwoHops) {
  const std::string src =
      "// impl\n"
      "unsigned leaf() {\n"
      "  std::random_device rd;\n"
      "  return rd();\n"
      "}\n"
      "unsigned mid() { return leaf(); }\n"
      "unsigned relay(unsigned x, unsigned y) { return y; }\n";
  std::vector<refit::cfg::FileCfg> files;
  files.push_back(refit::cfg::build_file_cfg("src/x.cpp", src));
  const auto sums =
      refit::det::compute_summaries(files, refit::det::AnalyzeOptions{});
  ASSERT_TRUE(sums.count("leaf"));
  EXPECT_TRUE(sums.at("leaf").ret_taint & refit::det::kNondetSeed)
      << "the entropy source must taint leaf's return value";
  ASSERT_TRUE(sums.count("mid"));
  EXPECT_TRUE(sums.at("mid").ret_taint & refit::det::kNondetSeed)
      << "leaf's return taint must propagate through mid's summary";
  ASSERT_TRUE(sums.count("relay"));
  EXPECT_EQ(sums.at("relay").param_to_ret, 2u)
      << "only parameter 1 flows to relay's return";
  EXPECT_EQ(sums.at("relay").ret_taint, 0u);
}

TEST(RefitDet, RecursionTerminates) {
  const std::string src =
      "// impl\n"
      "unsigned spin(unsigned x) {\n"
      "  if (x == 0) {\n"
      "    std::random_device rd;\n"
      "    return rd();\n"
      "  }\n"
      "  return spin(x - 1);\n"
      "}\n"
      "void use(std::ostream& os) { os << spin(3); }\n";
  const auto findings = analyze("src/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-seed-provenance");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(RefitDet, ExplainChainCoversSourceToSink) {
  const fs::path p =
      fs::path(REFIT_DET_TESTDATA_DIR) / "rules" / "nondet_seed_bad.cpp";
  const auto findings = analyze(p.generic_string(), read_file(p));
  ASSERT_EQ(findings.size(), 1u);
  const refit::det::Finding& f = findings[0];
  EXPECT_EQ(f.rule, "nondet-seed-provenance");
  ASSERT_GE(f.chain.size(), 4u) << "source, two call hops, and the sink";
  EXPECT_NE(f.chain.front().find("source:"), std::string::npos);
  const auto mentions = [&](const std::string& needle) {
    for (const auto& step : f.chain)
      if (step.find(needle) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(mentions("device_entropy")) << "the returning callee hop";
  EXPECT_TRUE(mentions("mix_bits")) << "the pass-through hop";
  EXPECT_NE(f.chain.back().find("seeds RNG stream"), std::string::npos);
}

TEST(RefitDet, SuppressionCoversOwnAndNextLineOnly) {
  const std::string src =
      "// header\n"
      "void f(std::ostream& os) {\n"
      "  unsigned a = std::thread::hardware_concurrency();\n"
      "  unsigned b = std::thread::hardware_concurrency();\n"
      "  // refit-det: allow(threadcount-value-dependence)\n"
      "  os << a;\n"
      "  os << b;\n"
      "}\n";
  const auto findings = analyze("src/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_EQ(findings[0].rule, "threadcount-value-dependence");
}

TEST(RefitDet, PathExemptionsApply) {
  // The clock seam owns the wall-clock read by design; anywhere else the
  // same code is a finding.
  const std::string src =
      "// impl\n"
      "void tick(std::ostream& os) {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  os << t.time_since_epoch().count();\n"
      "}\n";
  EXPECT_TRUE(analyze("src/obs/clock.cpp", src).empty());
  EXPECT_FALSE(analyze("src/obs/timer.cpp", src).empty());
}

TEST(RefitDet, FindingKeyIsLineIndependent) {
  const std::string src =
      "// impl\n"
      "void f(std::ostream& os) {\n"
      "  os << std::thread::hardware_concurrency();\n"
      "}\n";
  const auto a = analyze("src/x.cpp", src);
  const auto b = analyze("src/x.cpp", "// pad\n" + src);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].key(), b[0].key());  // the ratchet never keys on lines
}

TEST(RefitDet, BaselineRatchet) {
  std::istringstream base(
      "# comment\n"
      "\n"
      "threadcount-value-dependence bench/x.cpp write_header:p\n"
      "wallclock-to-output src/gone.cpp f:v\n");
  const refit::det::Baseline bl = refit::det::Baseline::parse(base);
  refit::det::Finding frozen;
  frozen.file = "bench/x.cpp";
  frozen.rule = "threadcount-value-dependence";
  frozen.detail = "write_header:p";
  refit::det::Finding fresh = frozen;
  fresh.detail = "write_header:other";
  const refit::det::RatchetResult rr =
      refit::det::apply_baseline({frozen, fresh}, bl);
  ASSERT_EQ(rr.frozen.size(), 1u);
  ASSERT_EQ(rr.fresh.size(), 1u);
  EXPECT_EQ(rr.fresh[0].detail, "write_header:other");
  ASSERT_EQ(rr.stale.size(), 1u);
  EXPECT_EQ(rr.stale[0], "wallclock-to-output src/gone.cpp f:v");
}

TEST(RefitDet, CheckedInBaselineHasNoSeedProvenanceEntries) {
  // scripts/det_baseline.sh enforces this at regeneration time; this test
  // enforces it against hand edits.
  std::ifstream in(REFIT_DET_BASELINE);
  ASSERT_TRUE(in) << "missing " << REFIT_DET_BASELINE;
  const refit::det::Baseline bl = refit::det::Baseline::parse(in);
  for (const std::string& key : bl.keys)
    EXPECT_NE(key.rfind("nondet-seed-provenance ", 0), 0u)
        << "nondet-seed-provenance must be fixed, never baselined: " << key;
}
