// Expected-findings self-test for refit-audit. Each directory under
// testdata/ is one whole-program case: every file in it is extracted,
// round-tripped through the summary text format, merged, and analyzed,
// and the produced (file, line, rule) triples must match the fixtures'
// annotations exactly —
//
//   // EXPECT-AUDIT: <rule>        finding on this line
//   // EXPECT-AUDIT@<N>: <rule>    finding reported at line N
//
// Cases without annotations assert the auditor stays silent, so the clean
// cases guard against false positives as much as the bad ones guard
// against false negatives. The header-self-sufficient rule needs a real
// compiler, so it gets a dedicated test that generates its own
// compile_commands.json (compiler from REFIT_AUDIT_CXX).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "audit.hpp"
#include "gtest/gtest.h"

namespace fs = std::filesystem;

namespace {

using FileLineRule = std::tuple<std::string, int, std::string>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<fs::path> case_dirs() {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(REFIT_AUDIT_TESTDATA_DIR))
    if (e.is_directory()) out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

/// Files of one case, as (case-relative path, content), sorted by path.
std::vector<std::pair<std::string, std::string>> case_files(
    const fs::path& dir) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file())
      out.emplace_back(
          e.path().lexically_relative(dir).generic_string(),
          read_file(e.path()));
  std::sort(out.begin(), out.end());
  return out;
}

std::multiset<FileLineRule> parse_expectations(const std::string& file,
                                               const std::string& content) {
  std::multiset<FileLineRule> want;
  const std::regex at_line(R"(EXPECT-AUDIT@(\d+):\s*([a-z0-9-]+))");
  const std::regex same_line(R"(EXPECT-AUDIT:\s*([a-z0-9-]+))");
  std::istringstream ss(content);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, at_line))
      want.emplace(file, std::stoi(m[1]), m[2]);
    else if (std::regex_search(line, m, same_line))
      want.emplace(file, lineno, m[1]);
  }
  return want;
}

/// Extract + serialize + parse back, so every case also exercises the
/// summary wire format.
std::vector<refit::audit::TuSummary> summarize_round_trip(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::stringstream wire;
  for (const auto& [path, content] : files)
    refit::audit::write_summary(
        wire, refit::audit::extract_summary(path, content));
  return refit::audit::read_summaries(wire);
}

}  // namespace

TEST(RefitAudit, TestdataDirHasCases) {
  EXPECT_GE(case_dirs().size(), 9u)
      << "testdata/ should hold a bad and a clean case per rule";
}

TEST(RefitAudit, CasesProduceExactlyTheAnnotatedFindings) {
  for (const fs::path& dir : case_dirs()) {
    SCOPED_TRACE(dir.filename().string());
    const auto files = case_files(dir);
    ASSERT_FALSE(files.empty());

    std::multiset<FileLineRule> want;
    for (const auto& [path, content] : files) {
      const auto w = parse_expectations(path, content);
      want.insert(w.begin(), w.end());
    }

    std::multiset<FileLineRule> got;
    for (const auto& f : refit::audit::analyze(summarize_round_trip(files),
                                               {}))
      got.emplace(f.file, f.line, f.rule);

    for (const auto& [file, line, rule] : want)
      EXPECT_TRUE(got.count({file, line, rule}))
          << "expected finding [" << rule << "] at " << file << ":" << line
          << " was not produced";
    for (const auto& [file, line, rule] : got)
      EXPECT_TRUE(want.count({file, line, rule}))
          << "unexpected finding [" << rule << "] at " << file << ":"
          << line;
  }
}

TEST(RefitAudit, EveryRuleIsCoveredByACase) {
  std::set<std::string> exercised;
  for (const fs::path& dir : case_dirs())
    for (const auto& [path, content] : case_files(dir))
      for (const auto& [f, l, rule] : parse_expectations(path, content))
        exercised.insert(rule);
  // header-self-sufficient needs a compiler; HeaderSelfSufficiency below
  // covers it end to end.
  exercised.insert("header-self-sufficient");
  for (const auto& r : refit::audit::rules())
    EXPECT_TRUE(exercised.count(r.name))
        << "rule '" << r.name << "' has no expected-findings case";
}

TEST(RefitAudit, SummaryRoundTripPreservesEveryField) {
  const std::string src =
      "// header comment\n"
      "#include \"dep.hpp\"\n"
      "// refit-audit: allow(dead-symbol)\n"
      "class Widget : public Base {\n"
      "  Network* net_ = nullptr;\n"
      "};\n"
      "inline int helper() { return 1; }\n";
  const refit::audit::TuSummary a =
      refit::audit::extract_summary("src/widget.hpp", src);
  std::stringstream wire;
  refit::audit::write_summary(wire, a);
  const auto read = refit::audit::read_summaries(wire);
  ASSERT_EQ(read.size(), 1u);
  const refit::audit::TuSummary& b = read[0];

  EXPECT_EQ(b.path, a.path);
  EXPECT_EQ(b.is_header, a.is_header);
  EXPECT_EQ(b.includes, a.includes);
  EXPECT_EQ(b.include_lines, a.include_lines);
  EXPECT_EQ(b.refs, a.refs);
  EXPECT_EQ(b.suppressed, a.suppressed);
  ASSERT_EQ(b.defs.size(), a.defs.size());
  for (std::size_t i = 0; i < a.defs.size(); ++i) {
    EXPECT_EQ(b.defs[i].name, a.defs[i].name);
    EXPECT_EQ(b.defs[i].line, a.defs[i].line);
    EXPECT_EQ(b.defs[i].kind, a.defs[i].kind);
  }
  ASSERT_EQ(b.classes.size(), a.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(b.classes[i].name, a.classes[i].name);
    EXPECT_EQ(b.classes[i].bases, a.classes[i].bases);
    ASSERT_EQ(b.classes[i].members.size(), a.classes[i].members.size());
    for (std::size_t j = 0; j < a.classes[i].members.size(); ++j) {
      EXPECT_EQ(b.classes[i].members[j].type, a.classes[i].members[j].type);
      EXPECT_EQ(b.classes[i].members[j].name, a.classes[i].members[j].name);
      EXPECT_EQ(b.classes[i].members[j].line, a.classes[i].members[j].line);
      EXPECT_EQ(b.classes[i].members[j].is_const,
                a.classes[i].members[j].is_const);
    }
  }
  // Sanity on the extraction itself, not just the round-trip.
  ASSERT_EQ(a.classes.size(), 1u);
  EXPECT_EQ(a.classes[0].bases, std::vector<std::string>{"Base"});
  ASSERT_EQ(a.classes[0].members.size(), 1u);
  EXPECT_EQ(a.classes[0].members[0].type, "Network");
  ASSERT_EQ(a.defs.size(), 2u);
  EXPECT_EQ(a.defs[1].name, "helper");
  EXPECT_TRUE(a.suppressed.count("dead-symbol@3"));
}

TEST(RefitAudit, BaselineFreezesAndReportsStaleEntries) {
  refit::audit::Finding kept{"src/a.cpp", 10, "dead-symbol", "msg", "OldFn"};
  refit::audit::Finding fresh{"src/b.cpp", 4, "pool-capture", "msg",
                              "x@parallel_for"};
  std::istringstream bl(
      "# comment line\n"
      "\n"
      "dead-symbol src/a.cpp OldFn  # kept: exercised via reflection\n"
      "dead-symbol src/gone.cpp Removed\n");
  const refit::audit::Baseline baseline = refit::audit::Baseline::parse(bl);
  const refit::audit::RatchetResult rr =
      refit::audit::apply_baseline({kept, fresh}, baseline);
  ASSERT_EQ(rr.frozen.size(), 1u);
  EXPECT_EQ(rr.frozen[0].detail, "OldFn");
  ASSERT_EQ(rr.fresh.size(), 1u);
  EXPECT_EQ(rr.fresh[0].detail, "x@parallel_for");
  ASSERT_EQ(rr.stale.size(), 1u);
  EXPECT_EQ(rr.stale[0], "dead-symbol src/gone.cpp Removed");
}

TEST(RefitAudit, BaselineKeyIgnoresLineNumbers) {
  refit::audit::Finding at10{"src/a.cpp", 10, "dead-symbol", "m", "Fn"};
  refit::audit::Finding at99{"src/a.cpp", 99, "dead-symbol", "m", "Fn"};
  EXPECT_EQ(at10.key(), at99.key());
  EXPECT_EQ(at10.key(), "dead-symbol src/a.cpp Fn");
}

TEST(RefitAudit, HeaderSelfSufficiency) {
  const fs::path dir =
      fs::path(REFIT_AUDIT_TESTDATA_DIR) / "self_sufficient";
  const auto files = case_files(dir);
  ASSERT_EQ(files.size(), 2u);

  // A minimal compile database: the flag harvest only needs one src/
  // entry with a command line.
  const fs::path cc_path =
      fs::temp_directory_path() / "refit_audit_test_compile_commands.json";
  {
    std::ofstream cc(cc_path);
    cc << "[\n  {\n    \"directory\": \"" << dir.generic_string()
       << "\",\n    \"command\": \"" << REFIT_AUDIT_CXX
       << " -std=c++20 -c src/good.cpp -o good.o\",\n    \"file\": \""
       << (dir / "src/good.cpp").generic_string() << "\"\n  }\n]\n";
  }

  refit::audit::AnalyzeOptions opts;
  opts.compile_commands = cc_path.string();
  opts.root = dir.string();
  const auto findings =
      refit::audit::analyze(summarize_round_trip(files), opts);
  std::remove(cc_path.string().c_str());

  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-self-sufficient");
  EXPECT_EQ(findings[0].file, "src/bad.hpp");
}

TEST(RefitAudit, SuppressionSurvivesTheSummaryRoundTrip) {
  const std::string src =
      "// fixture\n"
      "struct Pool { template <class F> void parallel_for(int n, F f); };\n"
      "void f(Pool& p) {\n"
      "  int acc = 0;\n"
      "  // refit-audit: allow(pool-capture)\n"
      "  p.parallel_for(8, [&acc](int i) { acc += i; });\n"
      "}\n";
  const auto findings = refit::audit::analyze(
      summarize_round_trip({{"src/f.cpp", src}}), {});
  for (const auto& f : findings) EXPECT_NE(f.rule, "pool-capture");
}
