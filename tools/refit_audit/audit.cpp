// Extraction + whole-program rule engine behind refit-audit (see
// audit.hpp for the rule catalogue, lexer.hpp for the shared scanner).
#include "audit.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/lexer.hpp"

namespace refit::audit {

using lint::LexResult;
using lint::match_brace;
using lint::match_paren;
using lint::PpLine;
using lint::Suppressions;
using lint::TokKind;
using lint::Token;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// Store/system types a Phase may not hold mutable pointers/references
/// to: anything that owns device or flow state. Cross-phase state must
/// flow through the EngineContext so checkpoints capture it.
const std::set<std::string>& watched_types() {
  static const std::set<std::string> kTypes = {
      "WeightStore", "CrossbarWeightStore", "RcsSystem", "Crossbar",
      "Network",     "EngineContext",       "FaultMatrix",
  };
  return kTypes;
}

/// The thread-pool entry points whose lambda arguments pool-capture
/// inspects (common/thread_pool.hpp and rcs/tile_grid.hpp).
const std::set<std::string>& pool_callees() {
  static const std::set<std::string> kCallees = {"parallel_for",
                                                 "for_each_tile"};
  return kCallees;
}

const std::set<std::string> kNotAFunctionName = {
    "if",     "for",     "while",   "switch",        "catch",
    "return", "sizeof",  "alignof", "decltype",      "static_assert",
    "assert", "defined", "new",     "delete",        "throw",
    "using",  "typedef", "else",    "co_return",     "co_await",
};

const std::set<std::string> kAssignOps = {"=",  "+=", "-=",  "*=",  "/=",
                                          "%=", "&=", "|=",  "^=",  "<<=",
                                          ">>="};

/// Skip a balanced `<...>` template argument list starting at `open`
/// (which must be `<`); returns the index just past the matching `>`.
/// `>>` closes two levels. Falls back to `open + 1` on mismatch.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
    if (t[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
    if (t[i].text == ";" || t[i].text == "{") break;  // not a template list
  }
  return open + 1;
}

// ---------------------------------------------------------------------------
// Extraction: classes
// ---------------------------------------------------------------------------

/// Parse the base list between `:` and the class body's `{`. Bases are
/// reduced to their unqualified name (`public refit::Phase` → "Phase",
/// `BasePhase<T>` → "BasePhase").
std::vector<std::string> parse_bases(const std::vector<Token>& t,
                                     std::size_t colon, std::size_t open) {
  std::vector<std::string> bases;
  std::string last_ident;
  int angle = 0;
  for (std::size_t i = colon + 1; i < open; ++i) {
    const Token& tok = t[i];
    if (tok.text == "<") ++angle;
    if (tok.text == ">") --angle;
    if (tok.text == ">>") angle -= 2;
    if (angle > 0) continue;
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "public" || tok.text == "protected" ||
          tok.text == "private" || tok.text == "virtual")
        continue;
      last_ident = tok.text;
    } else if (tok.text == "," || i + 1 == open) {
      if (!last_ident.empty()) bases.push_back(last_ident);
      last_ident.clear();
    }
  }
  if (!last_ident.empty()) bases.push_back(last_ident);
  return bases;
}

/// Collect watched-type pointer/reference data members declared directly
/// in the class body (nested braces — method bodies, nested types — and
/// parenthesized parameter lists are skipped, so a method *returning*
/// `RcsSystem*` or taking `EngineContext&` is not a member).
std::vector<MemberRef> parse_members(const std::vector<Token>& t,
                                     std::size_t open, std::size_t close) {
  std::vector<MemberRef> members;
  int brace = 0;
  int paren = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& tok = t[i];
    if (tok.text == "{") ++brace;
    if (tok.text == "}") --brace;
    if (tok.text == "(") ++paren;
    if (tok.text == ")") --paren;
    if (brace > 0 || paren > 0) continue;
    if (tok.kind != TokKind::kIdent || !watched_types().count(tok.text))
      continue;
    const bool const_before = i > 0 && t[i - 1].text == "const";
    // After the type: a run of cv-qualifiers and declarator operators,
    // then the member name.
    std::size_t j = i + 1;
    bool saw_ptr_or_ref = false;
    bool const_after = false;
    while (j < close && (t[j].text == "*" || t[j].text == "&" ||
                         t[j].text == "const")) {
      if (t[j].text == "*" || t[j].text == "&") {
        if (!saw_ptr_or_ref && t[j - 1].text == "const") const_after = true;
        saw_ptr_or_ref = true;
      }
      ++j;
    }
    if (!saw_ptr_or_ref) continue;
    if (j >= close || t[j].kind != TokKind::kIdent) continue;
    // `Type* name(` is a method declaration returning Type*, not a member.
    if (j + 1 < close && t[j + 1].text == "(") continue;
    members.push_back({tok.text, t[j].text, tok.line,
                       const_before || const_after});
    i = j;
  }
  return members;
}

// ---------------------------------------------------------------------------
// Extraction: pool-capture hazards
// ---------------------------------------------------------------------------

struct LambdaShape {
  bool default_ref = false;            ///< [&]
  std::set<std::string> ref_captures;  ///< [&x] / [&x = expr]
  std::size_t params_open = std::string::npos;
  std::size_t body_open = std::string::npos;
  std::size_t body_close = std::string::npos;
};

/// Interpret the `[` at `open` as a lambda introducer; returns false when
/// it is an array subscript / attribute instead (no `(` or `{` follows
/// the matching `]`).
bool parse_lambda(const std::vector<Token>& t, std::size_t open,
                  LambdaShape& out) {
  const std::size_t close = match_brace(t, open);
  if (close == std::string::npos || close + 1 >= t.size()) return false;
  std::size_t after = close + 1;
  if (t[after].text == "(") {
    out.params_open = after;
    const std::size_t pclose = match_paren(t, after);
    if (pclose == std::string::npos) return false;
    after = pclose + 1;
    // Skip trailer: mutable / noexcept / -> Type.
    while (after < t.size() && t[after].text != "{" &&
           t[after].text != ";" && t[after].text != ")")
      ++after;
  }
  if (after >= t.size() || t[after].text != "{") return false;
  out.body_open = after;
  out.body_close = match_brace(t, after);
  if (out.body_close == std::string::npos) return false;
  // Capture list.
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].text == "&") {
      if (i + 1 < close && t[i + 1].kind == TokKind::kIdent)
        out.ref_captures.insert(t[i + 1].text);
      else
        out.default_ref = true;
    }
    // Skip past init-capture expressions so their tokens are not
    // mistaken for captures.
    if (t[i].text == "=") {
      int angle = 0;
      while (i < close && !(angle == 0 && t[i].text == ",")) {
        if (t[i].text == "(") i = match_paren(t, i);
        if (t[i].text == "<") ++angle;
        if (t[i].text == ">") --angle;
        if (i == std::string::npos || i >= close) break;
        ++i;
      }
    }
  }
  return true;
}

/// Scan one lambda handed to `callee` for by-reference captures that the
/// body assigns to. Writes through indexing (`out[i] = …`) are the
/// sanctioned disjoint-range pattern and do not count; only scalar
/// assignments and ++/-- on the captured name itself do.
void scan_lambda_body(const std::vector<Token>& t, const LambdaShape& lam,
                      const std::string& callee,
                      std::vector<CaptureHazard>& out) {
  // Names declared inside the lambda (params + body locals): a token run
  // `Type name` marks `name` as local. Over-approximating locals is safe
  // — it only makes the rule quieter.
  std::set<std::string> declared;
  if (lam.params_open != std::string::npos) {
    const std::size_t pclose = match_paren(t, lam.params_open);
    for (std::size_t i = lam.params_open + 1; i < pclose; ++i)
      if (t[i].kind == TokKind::kIdent) declared.insert(t[i].text);
  }
  for (std::size_t i = lam.body_open + 1; i < lam.body_close; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const Token& prev = t[i - 1];
    if (prev.kind != TokKind::kIdent && prev.text != "*" &&
        prev.text != "&" && prev.text != ">")
      continue;
    declared.insert(t[i].text);
    // Comma-continued declarators share the declaration:
    // `float a = 0, b = 0, c = 0;` declares b and c too.
    int paren = 0;
    for (std::size_t j = i + 1; j < lam.body_close; ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++paren;
      if (s == ")" || s == "]" || s == "}") --paren;
      if (paren > 0) continue;
      if (s == ";" || paren < 0) break;
      if (s == "," && j + 1 < lam.body_close &&
          t[j + 1].kind == TokKind::kIdent)
        declared.insert(t[j + 1].text);
    }
  }

  std::set<std::string> reported;
  for (std::size_t i = lam.body_open + 1; i < lam.body_close; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& name = t[i].text;
    if (reported.count(name)) continue;
    const Token& prev = t[i - 1];
    // Member access / qualified names / declarations are not writes to a
    // captured local.
    if (prev.text == "." || prev.text == "->" || prev.text == "::" ||
        prev.kind == TokKind::kIdent || prev.text == "*" ||
        prev.text == "&" || prev.text == ">")
      continue;
    const bool written =
        (i + 1 < lam.body_close &&
         (kAssignOps.count(t[i + 1].text) || t[i + 1].text == "++" ||
          t[i + 1].text == "--")) ||
        prev.text == "++" || prev.text == "--";
    if (!written) continue;
    const bool hazardous =
        lam.ref_captures.count(name) ||
        (lam.default_ref && !declared.count(name));
    if (!hazardous) continue;
    out.push_back({callee, name, t[i].line});
    reported.insert(name);
  }
}

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

std::string join(const std::vector<std::string>& v, char sep) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += sep;
    out += s;
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Finding / rules
// ---------------------------------------------------------------------------

std::string Finding::key() const { return rule + " " + file + " " + detail; }

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"include-cycle",
       "a cycle in the quoted-#include graph (headers must form a DAG)"},
      {"dead-symbol",
       "a namespace-scope symbol defined under src/ but referenced in no "
       "other translation unit (a .cpp and its same-stem header are one "
       "unit); delete it or freeze it in baseline.txt with a comment"},
      {"header-self-sufficient",
       "a header under src/ that does not compile standalone with the "
       "project's compile_commands.json flags"},
      {"phase-purity",
       "a class deriving from the engine's Phase holding a non-const "
       "pointer/reference to a store/system type — phases must reach all "
       "state through the EngineContext so checkpoint/resume stays exact"},
      {"pool-capture",
       "a lambda passed to parallel_for / for_each_tile capturing a local "
       "by reference and assigning to it in the body (racy under the "
       "pool's static partition; write to disjoint ranges instead)"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Phase 1: extraction
// ---------------------------------------------------------------------------

TuSummary extract_summary(const std::string& path,
                          const std::string& content) {
  TuSummary tu;
  tu.path = path;
  tu.is_header = ends_with(path, ".hpp") || ends_with(path, ".h") ||
                 ends_with(path, ".hh");

  const LexResult lx = lint::lex(content);
  const std::vector<Token>& t = lx.tokens;

  // Suppressions, pre-resolved to "rule@line" entries (and "rule@*" for
  // file-wide) so they survive the summary round-trip.
  const Suppressions sup =
      lint::parse_suppressions(lx.comments, "refit-audit:");
  for (const std::string& rule : sup.file_wide)
    tu.suppressed.insert(rule + "@*");
  for (const auto& [line, rs] : sup.by_line)
    for (const std::string& rule : rs)
      tu.suppressed.insert(rule + "@" + std::to_string(line));

  // Includes and macro definitions.
  for (const PpLine& pp : lx.pp_lines) {
    if (starts_with(pp.text, "include")) {
      const std::size_t q1 = pp.text.find('"');
      if (q1 == std::string::npos) continue;  // <system> include
      const std::size_t q2 = pp.text.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      tu.includes.push_back(pp.text.substr(q1 + 1, q2 - q1 - 1));
      tu.include_lines.push_back(pp.line);
      continue;
    }
    if (starts_with(pp.text, "define")) {
      // Name, then every identifier in the replacement text (parameter
      // names included — harmless over-approximation).
      std::size_t p = 6;
      while (p < pp.text.size() && !lint::ident_start(pp.text[p])) ++p;
      std::size_t e = p;
      while (e < pp.text.size() && lint::ident_char(pp.text[e])) ++e;
      if (e == p) continue;
      const std::string name = pp.text.substr(p, e - p);
      std::set<std::string>& body = tu.macros[name];
      for (std::size_t q = e; q < pp.text.size();) {
        if (!lint::ident_start(pp.text[q])) {
          ++q;
          continue;
        }
        std::size_t qe = q;
        while (qe < pp.text.size() && lint::ident_char(pp.text[qe])) ++qe;
        const std::string id = pp.text.substr(q, qe - q);
        if (id != name) body.insert(id);
        q = qe;
      }
    }
  }

  // References: every identifier the TU mentions.
  for (const Token& tok : t)
    if (tok.kind == TokKind::kIdent) tu.refs.insert(tok.text);

  // Pool-capture hazards: a linear scan independent of scope.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !pool_callees().count(t[i].text) ||
        t[i + 1].text != "(")
      continue;
    const std::size_t close = match_paren(t, i + 1);
    if (close == std::string::npos) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      LambdaShape lam;
      if (!parse_lambda(t, j, lam)) continue;
      scan_lambda_body(t, lam, t[i].text, tu.captures);
      j = lam.body_close;
    }
    i = close;
  }

  // Namespace-scope definitions and class shapes. Class and function
  // bodies are consumed inline, so the brace stack only tracks
  // namespaces and stray blocks (global initializers, enum bodies).
  struct Scope {
    bool is_namespace = false;
    bool anon = false;
  };
  std::vector<Scope> scopes;
  auto at_ns_scope = [&] {
    for (const Scope& s : scopes)
      if (!s.is_namespace) return false;
    return true;
  };
  auto in_anon_ns = [&] {
    for (const Scope& s : scopes)
      if (s.is_namespace && s.anon) return true;
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") scopes.push_back({false, false});
      if (tok.text == "}" && !scopes.empty()) scopes.pop_back();
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    if (tok.text == "namespace" && (i == 0 || t[i - 1].text != "using")) {
      std::size_t j = i + 1;
      bool anon = true;
      while (j < t.size() &&
             (t[j].kind == TokKind::kIdent || t[j].text == "::")) {
        if (t[j].kind == TokKind::kIdent) anon = false;
        ++j;
      }
      if (j < t.size() && t[j].text == "{") {
        scopes.push_back({true, anon});
        i = j;
      } else {
        i = j;  // namespace alias — no scope
      }
      continue;
    }

    if (!at_ns_scope()) continue;

    // enum [class|struct] Name [: underlying] { … };
    if (tok.text == "enum") {
      std::size_t j = i + 1;
      if (j < t.size() && (t[j].text == "class" || t[j].text == "struct"))
        ++j;
      if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
      const std::string name = t[j].text;
      const int line = t[j].line;
      std::size_t k = j + 1;
      while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
      if (k < t.size() && t[k].text == "{") {
        if (!in_anon_ns()) tu.defs.push_back({name, line, "enum"});
        const std::size_t body_close = match_brace(t, k);
        if (body_close != std::string::npos) i = body_close;
      } else {
        i = k;
      }
      continue;
    }

    // class/struct Name [final] [: bases] { … };  (fwd decls skipped)
    if ((tok.text == "class" || tok.text == "struct")) {
      std::size_t j = i + 1;
      if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
      const std::string name = t[j].text;
      const int line = t[j].line;
      std::size_t k = j + 1;
      if (k < t.size() && t[k].text == "final") ++k;
      std::size_t colon = std::string::npos;
      if (k < t.size() && t[k].text == ":") {
        colon = k;
        while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
      }
      // Only `{` (or `: bases {`) right after the name is a definition;
      // anything else is a forward declaration, a template parameter
      // (`template <class T>`), or an elaborated type.
      if (k >= t.size() || t[k].text != "{") {
        i = j;
        continue;
      }
      const std::size_t body_close = match_brace(t, k);
      if (body_close == std::string::npos) continue;
      ClassInfo ci;
      ci.name = name;
      ci.line = line;
      if (colon != std::string::npos) ci.bases = parse_bases(t, colon, k);
      ci.members = parse_members(t, k, body_close);
      tu.classes.push_back(std::move(ci));
      if (!in_anon_ns()) tu.defs.push_back({name, line, "class"});
      i = body_close;
      continue;
    }

    // Function definition: Name ( params ) [trailer] { … }. Member
    // access and keywords are excluded. Qualified names (`Foo::bar`,
    // out-of-class methods and constructors) are not new symbols, but
    // their bodies — and ctor member-init lists — are still consumed so
    // `: member_(x) {` never masquerades as a definition of `member_`.
    if (i + 1 < t.size() && t[i + 1].text == "(" &&
        !kNotAFunctionName.count(tok.text) &&
        (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->" &&
                    t[i - 1].text != "operator"))) {
      const bool qualified = i > 0 && t[i - 1].text == "::";
      const std::size_t close = match_paren(t, i + 1);
      if (close == std::string::npos) continue;
      // Trailer scan to the body `{` (definition) or a terminator.
      // Parenthesized member-init expressions and template argument
      // lists are skipped whole.
      std::size_t k = close + 1;
      bool is_def = false;
      while (k < t.size()) {
        const std::string& s = t[k].text;
        if (s == "{") {
          is_def = true;
          break;
        }
        if (s == ";" || s == "}" || s == "=") break;
        if (!qualified && (s == "," || s == ")")) break;
        if (s == "(") {
          k = match_paren(t, k);
          if (k == std::string::npos) break;
          ++k;
          continue;
        }
        if (s == "<") {
          k = skip_angles(t, k);
          continue;
        }
        ++k;
      }
      if (!is_def || k == std::string::npos) {
        i = close;
        continue;
      }
      // `static` anywhere in the leading declaration keeps it TU-local.
      bool is_static = false;
      for (std::size_t b = i; b-- > 0 && i - b <= 12;) {
        const std::string& s = t[b].text;
        if (s == ";" || s == "}" || s == "{") break;
        if (s == "static") is_static = true;
      }
      if (!qualified && !is_static && !in_anon_ns())
        tu.defs.push_back({tok.text, tok.line, "function"});
      const std::size_t body_close = match_brace(t, k);
      if (body_close != std::string::npos) i = body_close;
      continue;
    }
  }
  return tu;
}

// ---------------------------------------------------------------------------
// Summary serialization
// ---------------------------------------------------------------------------

void write_summary(std::ostream& os, const TuSummary& tu) {
  os << "tu " << (tu.is_header ? 1 : 0) << " " << tu.path << "\n";
  for (std::size_t i = 0; i < tu.includes.size(); ++i)
    os << "inc " << tu.include_lines[i] << " " << tu.includes[i] << "\n";
  for (const SymbolDef& d : tu.defs)
    os << "def " << d.line << " " << d.kind << " " << d.name << "\n";
  for (const ClassInfo& c : tu.classes) {
    os << "class " << c.line << " " << c.name << " "
       << (c.bases.empty() ? "-" : join(c.bases, ',')) << "\n";
    for (const MemberRef& m : c.members)
      os << "mem " << m.line << " " << (m.is_const ? 1 : 0) << " " << m.type
         << " " << m.name << "\n";
  }
  for (const CaptureHazard& c : tu.captures)
    os << "cap " << c.line << " " << c.callee << " " << c.var << "\n";
  for (const std::string& s : tu.suppressed) os << "sup " << s << "\n";
  for (const auto& [name, body] : tu.macros) {
    os << "mac " << name;
    for (const std::string& id : body) os << " " << id;
    os << "\n";
  }
  std::size_t col = 0;
  for (const std::string& r : tu.refs) {
    os << (col == 0 ? "ref" : "") << " " << r;
    if (++col == 24) {
      os << "\n";
      col = 0;
    }
  }
  if (col != 0) os << "\n";
  os << "end\n";
}

std::vector<TuSummary> read_summaries(std::istream& is) {
  std::vector<TuSummary> out;
  TuSummary cur;
  bool open = false;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "tu") {
      int hdr = 0;
      ls >> hdr >> cur.path;
      cur.is_header = hdr != 0;
      open = true;
    } else if (tag == "inc") {
      int l = 0;
      std::string inc;
      ls >> l >> inc;
      cur.include_lines.push_back(l);
      cur.includes.push_back(inc);
    } else if (tag == "def") {
      SymbolDef d;
      ls >> d.line >> d.kind >> d.name;
      cur.defs.push_back(d);
    } else if (tag == "class") {
      ClassInfo c;
      std::string bases;
      ls >> c.line >> c.name >> bases;
      if (bases != "-") c.bases = split(bases, ',');
      cur.classes.push_back(std::move(c));
    } else if (tag == "mem" && !cur.classes.empty()) {
      MemberRef m;
      int is_const = 0;
      ls >> m.line >> is_const >> m.type >> m.name;
      m.is_const = is_const != 0;
      cur.classes.back().members.push_back(m);
    } else if (tag == "cap") {
      CaptureHazard c;
      ls >> c.line >> c.callee >> c.var;
      cur.captures.push_back(c);
    } else if (tag == "sup") {
      std::string s;
      ls >> s;
      cur.suppressed.insert(s);
    } else if (tag == "mac") {
      std::string name;
      ls >> name;
      std::set<std::string>& body = cur.macros[name];
      std::string id;
      while (ls >> id) body.insert(id);
    } else if (tag == "ref") {
      std::string r;
      while (ls >> r) cur.refs.insert(r);
    } else if (tag == "end" && open) {
      out.push_back(std::move(cur));
      cur = TuSummary{};
      open = false;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase 2: analysis
// ---------------------------------------------------------------------------

namespace {

bool suppressed(const TuSummary& tu, const std::string& rule, int line) {
  return tu.suppressed.count(rule + "@*") ||
         tu.suppressed.count(rule + "@" + std::to_string(line)) ||
         tu.suppressed.count(rule + "@" + std::to_string(line - 1));
}

/// Lexical-normalize a path ("a/./b", "a/x/../b" → "a/b").
std::string normalize(const std::string& p) {
  return std::filesystem::path(p).lexically_normal().generic_string();
}

std::string dir_of(const std::string& p) {
  const std::size_t slash = p.rfind('/');
  return slash == std::string::npos ? "" : p.substr(0, slash);
}

/// Unit key pairing a .cpp with its same-stem header.
std::string unit_of(const std::string& p) {
  const std::size_t dot = p.rfind('.');
  return dot == std::string::npos ? p : p.substr(0, dot);
}

// ---- include-cycle --------------------------------------------------------

void check_include_cycles(const std::vector<TuSummary>& tus,
                          std::vector<Finding>& findings) {
  // Resolve each quoted include to a scanned file: relative to the
  // includer's directory first, then to src/ (the project's include
  // root), then as written.
  std::map<std::string, const TuSummary*> by_path;
  for (const TuSummary& tu : tus) by_path[normalize(tu.path)] = &tu;
  auto resolve = [&](const TuSummary& from,
                     const std::string& inc) -> const TuSummary* {
    for (const std::string& cand :
         {normalize(dir_of(from.path) + "/" + inc), normalize("src/" + inc),
          normalize(inc)}) {
      const auto it = by_path.find(cand);
      if (it != by_path.end()) return it->second;
    }
    return nullptr;
  };

  // Edges between headers only (a .cpp cannot appear inside a cycle).
  std::map<const TuSummary*, std::vector<std::pair<const TuSummary*, int>>>
      edges;
  for (const TuSummary& tu : tus) {
    if (!tu.is_header) continue;
    for (std::size_t i = 0; i < tu.includes.size(); ++i) {
      const TuSummary* to = resolve(tu, tu.includes[i]);
      if (to != nullptr && to->is_header && to != &tu)
        edges[&tu].push_back({to, tu.include_lines[i]});
    }
  }

  // Iterative DFS with colors; each cycle is reported once, anchored at
  // its lexicographically smallest member so the finding is stable.
  std::map<const TuSummary*, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::string> seen_cycles;
  std::vector<const TuSummary*> stack;

  std::function<void(const TuSummary*)> dfs = [&](const TuSummary* n) {
    color[n] = 1;
    stack.push_back(n);
    for (const auto& [to, line] : edges[n]) {
      (void)line;
      if (color[to] == 2) continue;
      if (color[to] == 1) {
        // Found a cycle: the stack suffix from `to` to `n`.
        const auto begin =
            std::find(stack.begin(), stack.end(), to);
        std::vector<std::string> members;
        for (auto it = begin; it != stack.end(); ++it)
          members.push_back((*it)->path);
        std::vector<std::string> sorted = members;
        std::sort(sorted.begin(), sorted.end());
        const std::string key = join(sorted, ' ');
        if (seen_cycles.count(key)) continue;
        seen_cycles.insert(key);
        // Anchor: smallest member; line: its include of the next member.
        const std::size_t anchor = static_cast<std::size_t>(
            std::min_element(members.begin(), members.end()) -
            members.begin());
        const TuSummary* atu = by_path.at(normalize(members[anchor]));
        const std::string& next = members[(anchor + 1) % members.size()];
        int at_line = 1;
        for (const auto& [to2, line2] : edges[atu])
          if (to2->path == next) at_line = line2;
        // Rotate so the message walks the cycle from the anchor.
        std::vector<std::string> walk;
        for (std::size_t k = 0; k < members.size(); ++k)
          walk.push_back(members[(anchor + k) % members.size()]);
        walk.push_back(members[anchor]);
        if (!suppressed(*atu, "include-cycle", at_line))
          findings.push_back({atu->path, at_line, "include-cycle",
                              "#include cycle: " + join(walk, ' ') +
                                  " (headers must form a DAG)",
                              join(sorted, ',')});
        continue;
      }
      dfs(to);
    }
    stack.pop_back();
    color[n] = 2;
  };
  for (const TuSummary& tu : tus)
    if (tu.is_header && color[&tu] == 0) dfs(&tu);
}

// ---- dead-symbol ----------------------------------------------------------

void check_dead_symbols(const std::vector<TuSummary>& tus,
                        std::vector<Finding>& findings) {
  // Project-wide macro table: using a macro anywhere references every
  // identifier in its replacement text (transitively, for macros built
  // from macros — REFIT_INFO → REFIT_LOG → log_line).
  std::map<std::string, std::set<std::string>> macro_bodies;
  for (const TuSummary& tu : tus)
    for (const auto& [name, body] : tu.macros)
      macro_bodies[name].insert(body.begin(), body.end());

  // refs per unit (a .cpp and its same-stem header merge), expanded
  // through the macro table to a fixpoint.
  std::map<std::string, std::set<std::string>> unit_refs;
  for (const TuSummary& tu : tus)
    unit_refs[unit_of(tu.path)].insert(tu.refs.begin(), tu.refs.end());
  for (auto& [unit, refs] : unit_refs) {
    std::vector<std::string> work(refs.begin(), refs.end());
    while (!work.empty()) {
      const std::string r = std::move(work.back());
      work.pop_back();
      const auto it = macro_bodies.find(r);
      if (it == macro_bodies.end()) continue;
      for (const std::string& id : it->second)
        if (refs.insert(id).second) work.push_back(id);
    }
  }

  // name → units referencing it.
  std::map<std::string, std::set<std::string>> ref_units;
  for (const auto& [unit, refs] : unit_refs)
    for (const std::string& r : refs) ref_units[r].insert(unit);

  for (const TuSummary& tu : tus) {
    if (!starts_with(normalize(tu.path), "src/")) continue;
    const std::string unit = unit_of(tu.path);
    for (const SymbolDef& d : tu.defs) {
      if (d.name == "main") continue;
      const auto it = ref_units.find(d.name);
      const std::size_t external =
          it == ref_units.end() ? 0 : it->second.size() -
                                          (it->second.count(unit) ? 1 : 0);
      if (external > 0) continue;
      if (suppressed(tu, "dead-symbol", d.line)) continue;
      findings.push_back(
          {tu.path, d.line, "dead-symbol",
           d.kind + " '" + d.name +
               "' is referenced in no other translation unit — delete it, "
               "make it TU-local, or freeze it in baseline.txt with a "
               "comment",
           d.name});
    }
  }
}

// ---- phase-purity ---------------------------------------------------------

void check_phase_purity(const std::vector<TuSummary>& tus,
                        std::vector<Finding>& findings) {
  // Class → bases, merged across TUs (unqualified names).
  std::map<std::string, std::set<std::string>> bases;
  for (const TuSummary& tu : tus)
    for (const ClassInfo& c : tu.classes)
      bases[c.name].insert(c.bases.begin(), c.bases.end());

  std::map<std::string, bool> memo;
  std::function<bool(const std::string&, int)> derives_from_phase =
      [&](const std::string& name, int depth) -> bool {
    if (name == "Phase") return true;
    if (depth > 16) return false;  // base-graph cycle guard
    const auto m = memo.find(name);
    if (m != memo.end()) return m->second;
    memo[name] = false;  // break cycles conservatively
    bool yes = false;
    const auto it = bases.find(name);
    if (it != bases.end())
      for (const std::string& b : it->second)
        if (derives_from_phase(b, depth + 1)) yes = true;
    memo[name] = yes;
    return yes;
  };

  for (const TuSummary& tu : tus) {
    for (const ClassInfo& c : tu.classes) {
      if (c.name == "Phase" || !derives_from_phase(c.name, 0)) continue;
      for (const MemberRef& m : c.members) {
        if (m.is_const) continue;
        if (suppressed(tu, "phase-purity", m.line)) continue;
        findings.push_back(
            {tu.path, m.line, "phase-purity",
             c.name + "::" + m.name + " holds a mutable " + m.type +
                 " — phases may only reach store/system state through the "
                 "EngineContext passed to run(), or checkpoint/resume "
                 "silently drops it",
             c.name + "::" + m.name});
      }
    }
  }
}

// ---- pool-capture ---------------------------------------------------------

void check_pool_captures(const std::vector<TuSummary>& tus,
                         std::vector<Finding>& findings) {
  for (const TuSummary& tu : tus) {
    for (const CaptureHazard& c : tu.captures) {
      if (suppressed(tu, "pool-capture", c.line)) continue;
      findings.push_back(
          {tu.path, c.line, "pool-capture",
           "lambda passed to " + c.callee + " captures '" + c.var +
               "' by reference and assigns to it — lanes race on it under "
               "the static partition; write to disjoint per-index output "
               "instead",
           c.var + "@" + c.callee});
    }
  }
}

// ---- header-self-sufficient -----------------------------------------------

/// Read one JSON string starting at the opening quote; handles \" and \\.
std::string read_json_string(const std::string& s, std::size_t& i) {
  std::string out;
  ++i;  // opening quote
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1];
      i += 2;
    } else {
      out += s[i++];
    }
  }
  ++i;  // closing quote
  return out;
}

/// Pull the compile flags (-I / -isystem / -D / -std= / -include) and the
/// compiler out of the first src/ entry of compile_commands.json. The
/// parser is deliberately minimal — the file is machine-generated by
/// CMake in this repo, not arbitrary JSON.
struct CompileFlags {
  std::string compiler;
  std::vector<std::string> flags;
  bool found = false;
};

CompileFlags parse_compile_commands(const std::string& json_path) {
  CompileFlags out;
  std::ifstream in(json_path, std::ios::binary);
  if (!in) return out;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();

  // Walk top-level array objects; each is {"directory":…,"command":…,
  // "file":…}. Prefer an entry compiling a file under src/.
  struct Entry {
    std::string command;
    std::string file;
  };
  std::vector<Entry> entries;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '{') {
      ++i;
      continue;
    }
    Entry e;
    int depth = 0;
    std::string pending_key;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '{') {
        ++depth;
        ++i;
      } else if (c == '}') {
        --depth;
        ++i;
        if (depth == 0) break;
      } else if (c == '"') {
        const std::string str = read_json_string(s, i);
        // Key if followed by ':', else a value for the pending key.
        std::size_t j = i;
        while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j])))
          ++j;
        if (j < s.size() && s[j] == ':') {
          pending_key = str;
          i = j + 1;
        } else {
          if (pending_key == "command") e.command = str;
          if (pending_key == "file") e.file = str;
          pending_key.clear();
        }
      } else {
        ++i;
      }
    }
    entries.push_back(std::move(e));
  }
  const Entry* chosen = nullptr;
  for (const Entry& e : entries)
    if (e.file.find("/src/") != std::string::npos && !e.command.empty()) {
      chosen = &e;
      break;
    }
  if (chosen == nullptr)
    for (const Entry& e : entries)
      if (!e.command.empty()) {
        chosen = &e;
        break;
      }
  if (chosen == nullptr) return out;

  std::istringstream cmd(chosen->command);
  std::string arg;
  bool first = true;
  bool take_next = false;
  while (cmd >> arg) {
    if (first) {
      out.compiler = arg;
      first = false;
      continue;
    }
    if (take_next) {
      out.flags.push_back(arg);
      take_next = false;
      continue;
    }
    if (starts_with(arg, "-I") || starts_with(arg, "-D") ||
        starts_with(arg, "-std=")) {
      out.flags.push_back(arg);
    } else if (arg == "-isystem" || arg == "-include") {
      out.flags.push_back(arg);
      take_next = true;
    }
  }
  out.found = !out.compiler.empty();
  return out;
}

void check_headers_self_sufficient(const std::vector<TuSummary>& tus,
                                   const AnalyzeOptions& opts,
                                   std::vector<Finding>& findings) {
  if (opts.compile_commands.empty()) return;
  CompileFlags cf = parse_compile_commands(opts.compile_commands);
  if (!cf.found) return;
  if (!opts.compiler.empty()) cf.compiler = opts.compiler;

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "refit_audit_hdr";
  std::error_code ec;
  std::filesystem::create_directories(scratch, ec);
  if (ec) return;

  std::string flags;
  for (const std::string& f : cf.flags) flags += " " + f;

  int counter = 0;
  for (const TuSummary& tu : tus) {
    if (!tu.is_header || !starts_with(normalize(tu.path), "src/")) continue;
    const std::filesystem::path header =
        std::filesystem::absolute(std::filesystem::path(opts.root) /
                                  tu.path);
    const std::filesystem::path stub =
        scratch / ("hdr_" + std::to_string(counter++) + ".cpp");
    {
      std::ofstream out(stub);
      out << "#include \"" << header.generic_string() << "\"\n";
    }
    const std::string cmd = cf.compiler + flags + " -fsyntax-only -x c++ " +
                            stub.string();
    const int rc = std::system(cmd.c_str());  // NOLINT
    std::filesystem::remove(stub, ec);
    if (rc == 0) continue;
    if (suppressed(tu, "header-self-sufficient", 1)) continue;
    findings.push_back(
        {tu.path, 1, "header-self-sufficient",
         "header does not compile standalone with the project flags — add "
         "the includes it is missing (compiler output above)",
         tu.path});
  }
}

}  // namespace

std::vector<Finding> analyze(const std::vector<TuSummary>& tus,
                             const AnalyzeOptions& opts) {
  std::vector<Finding> findings;
  check_include_cycles(tus, findings);
  check_dead_symbols(tus, findings);
  check_phase_purity(tus, findings);
  check_pool_captures(tus, findings);
  check_headers_self_sufficient(tus, opts, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

Baseline Baseline::parse(std::istream& is) {
  Baseline bl;
  std::string line;
  while (std::getline(is, line)) {
    // Strip trailing comments and whitespace.
    const std::size_t hash = line.find(" #");
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos || line[b] == '#') continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    bl.keys.insert(line.substr(b, e - b + 1));
  }
  return bl;
}

RatchetResult apply_baseline(const std::vector<Finding>& findings,
                             const Baseline& baseline) {
  RatchetResult out;
  std::set<std::string> matched;
  for (const Finding& f : findings) {
    if (baseline.covers(f)) {
      out.frozen.push_back(f);
      matched.insert(f.key());
    } else {
      out.fresh.push_back(f);
    }
  }
  for (const std::string& k : baseline.keys)
    if (!matched.count(k)) out.stale.push_back(k);
  std::sort(out.stale.begin(), out.stale.end());
  return out;
}

}  // namespace refit::audit
