// refit-audit — cross-translation-unit static analysis (docs/tooling.md).
//
// Where refit-lint judges one file at a time, refit-audit sees the whole
// program. It runs in two phases:
//
//   1. extraction  — each translation unit is lexed (with refit-lint's
//      shared lexer) into a TuSummary: its includes, the symbols it
//      defines and references at namespace scope, every class with its
//      base list and raw-pointer/reference members, and every lambda
//      handed to the thread pool (parallel_for / for_each_tile) together
//      with its by-reference captures and the scalars its body writes.
//      Summaries serialize to a line-oriented text format, one summary
//      per file, so extraction can be cached or distributed.
//
//   2. analysis — the merged summaries are checked against the project-
//      wide rules:
//
//      include-cycle           any cycle in the quoted-include graph
//      dead-symbol             a non-test symbol defined under src/ but
//                              referenced nowhere outside its own TU
//                              (a .cpp and its same-stem header count as
//                              one TU)
//      header-self-sufficient  every header under src/ compiles on its
//                              own, with flags taken from
//                              compile_commands.json (skipped when no
//                              compile database is given)
//      phase-purity            a class deriving (transitively) from the
//                              engine's Phase must not hold non-const
//                              pointers/references to store/system types
//                              — all cross-phase state flows through
//                              EngineContext
//      pool-capture            a lambda given to ThreadPool::parallel_for
//                              or TileGrid::for_each_tile that captures a
//                              local by reference and assigns to it in
//                              the body (a data race the static
//                              partitioning cannot save)
//
// Findings diff against a checked-in baseline (tools/refit_audit/
// baseline.txt): pre-existing, deliberately-kept debt is frozen there and
// anything new fails. In-source suppression uses the shared syntax with
// this tool's tag: `// refit-audit: allow(rule)`.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace refit::audit {

/// One whole-program rule violation. `detail` is the finding's stable
/// identity (symbol name, cycle path, member, captured variable) — the
/// baseline keys on (rule, file, detail) and never on line numbers, so
/// unrelated edits cannot unfreeze old debt.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string detail;

  /// Baseline key: "<rule> <file> <detail>".
  [[nodiscard]] std::string key() const;
};

/// Name + one-line description, for --list-rules and docs.
struct RuleInfo {
  const char* name;
  const char* description;
};

/// All rules the auditor knows, in report order.
const std::vector<RuleInfo>& rules();

// ---------------------------------------------------------------------------
// Phase 1: per-TU extraction
// ---------------------------------------------------------------------------

/// A namespace-scope definition (class/struct/enum or free function).
struct SymbolDef {
  std::string name;
  int line = 0;
  std::string kind;  ///< "class" | "enum" | "function"
};

/// A pointer/reference data member of a class (only members whose type
/// names a watched store/system type are recorded).
struct MemberRef {
  std::string type;    ///< the pointee/referee type name
  std::string name;    ///< member name
  int line = 0;
  bool is_const = false;
};

/// A class with its base list (for the Phase-derivation walk).
struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<std::string> bases;     ///< unqualified base names
  std::vector<MemberRef> members;     ///< watched pointer/ref members
};

/// A by-reference capture that the lambda body assigns to.
struct CaptureHazard {
  std::string callee;  ///< "parallel_for" | "for_each_tile"
  std::string var;     ///< the captured, written variable
  int line = 0;        ///< line of the offending write
};

/// Everything the whole-program pass needs to know about one file.
struct TuSummary {
  std::string path;      ///< as scanned (repo-relative in normal runs)
  bool is_header = false;
  std::vector<std::string> includes;  ///< quoted includes, as written
  std::vector<int> include_lines;     ///< parallel to `includes`
  std::vector<SymbolDef> defs;
  std::set<std::string> refs;  ///< every identifier the TU mentions
  /// #define name → identifiers in its replacement text. dead-symbol
  /// expands refs through this map so a function called only from a
  /// macro's expansion (REFIT_CHECK → check_failed) counts as referenced
  /// wherever the macro is used.
  std::map<std::string, std::set<std::string>> macros;
  std::vector<ClassInfo> classes;
  std::vector<CaptureHazard> captures;
  /// Lines with a `// refit-audit: allow(...)` suppression, pre-resolved
  /// to the rules they cover ("rule@line" strings), so suppressions
  /// survive the summary round-trip.
  std::set<std::string> suppressed;
};

/// Lex + summarize one file. Never fails; unparseable constructs are
/// skipped (this is a linter, not a compiler).
[[nodiscard]] TuSummary extract_summary(const std::string& path,
                                        const std::string& content);

/// Line-oriented text serialization, one summary per file. Summaries
/// stream back-to-back; read_summaries consumes the whole stream.
void write_summary(std::ostream& os, const TuSummary& tu);
[[nodiscard]] std::vector<TuSummary> read_summaries(std::istream& is);

// ---------------------------------------------------------------------------
// Phase 2: whole-program analysis
// ---------------------------------------------------------------------------

struct AnalyzeOptions {
  /// Path to compile_commands.json; empty skips header-self-sufficient.
  std::string compile_commands;
  /// Directory the scanned paths are relative to (the repo root in normal
  /// runs); header-self-sufficient resolves headers against it.
  std::string root = ".";
  /// Override the compiler binary for the header check (tests); empty
  /// uses the compiler recorded in the compile database.
  std::string compiler;
};

/// Run every cross-TU rule over the merged summaries. Findings are sorted
/// by (file, line, rule); in-source suppressions are already applied.
[[nodiscard]] std::vector<Finding> analyze(const std::vector<TuSummary>& tus,
                                           const AnalyzeOptions& opts);

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

/// The checked-in debt freeze: one `<rule> <file> <detail>` key per line,
/// `#` comments and blank lines ignored.
struct Baseline {
  std::set<std::string> keys;

  [[nodiscard]] static Baseline parse(std::istream& is);
  [[nodiscard]] bool covers(const Finding& f) const {
    return keys.count(f.key()) > 0;
  }
};

/// Splits findings into `fresh` (fail CI) and `frozen` (baselined), and
/// returns the baseline keys that no longer match anything (stale —
/// regenerate with scripts/audit_baseline.sh).
struct RatchetResult {
  std::vector<Finding> fresh;
  std::vector<Finding> frozen;
  std::vector<std::string> stale;
};
[[nodiscard]] RatchetResult apply_baseline(const std::vector<Finding>& findings,
                                           const Baseline& baseline);

}  // namespace refit::audit
