// Fixture: an unrelated TU that never mentions util's symbols (and main
// itself is exempt from dead-symbol).
int main() { return 0; }
