// Fixture: same-stem .cpp — references here are the *same* unit as
// util.hpp, so they do not count as external use.
#include "util.hpp"

static int touch_all() {
  DeadThing t;
  return t.value() + static_cast<int>(DeadKind::kA) + dead_helper();
}
