// Fixture: symbols referenced only inside their own translation unit
// (this header + util.cpp) are dead — internal use does not save them.
#pragma once

class DeadThing {  // EXPECT-AUDIT: dead-symbol
 public:
  int value() const { return 7; }
};

enum class DeadKind {  // EXPECT-AUDIT: dead-symbol
  kA,
  kB,
};

inline int dead_helper() { return 3; }  // EXPECT-AUDIT: dead-symbol
