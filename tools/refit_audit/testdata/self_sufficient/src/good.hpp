// Fixture: self-sufficient header — includes everything it names.
#pragma once
#include <cstddef>
#include <vector>

std::vector<int> make_values(std::size_t n);
