// Fixture: names std::vector without including <vector> — compiles only
// when the includer happens to have pulled it in first.
#pragma once
#include <cstddef>

std::vector<int> make_values(std::size_t n);
