// Fixture: middle link of the c -> d -> e -> c cycle.
#pragma once
#include "e.hpp"
