// Fixture: three-header include cycle (c -> d -> e -> c).
#pragma once
#include "d.hpp"  // EXPECT-AUDIT: include-cycle
