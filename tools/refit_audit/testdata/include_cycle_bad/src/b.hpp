// Fixture: two-header include cycle (a <-> b); reported once, anchored
// at the lexicographically smallest member (a.hpp).
#pragma once
#include "a.hpp"
