// Fixture: two-header include cycle (a <-> b).
#pragma once
#include "b.hpp"  // EXPECT-AUDIT: include-cycle
