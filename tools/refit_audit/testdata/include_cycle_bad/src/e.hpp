// Fixture: closing link of the c -> d -> e -> c cycle.
#pragma once
#include "c.hpp"
