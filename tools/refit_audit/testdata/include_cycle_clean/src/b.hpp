// Fixture: left edge of the diamond; shares c.hpp with a.hpp.
#pragma once
#include "c.hpp"
