// Fixture: sink of the diamond; includes nothing.
#pragma once
