// Fixture: a diamond include graph is a DAG, not a cycle.
#pragma once
#include "b.hpp"
#include "c.hpp"
