// Fixture: lambdas handed to the pool that capture a local by reference
// and assign to it — every lane races on the same scalar.
#include <cstddef>

struct Pool {
  template <class F>
  void parallel_for(std::size_t n, F f);
};

struct Grid {
  template <class F>
  void for_each_tile(F f);
};

float bad_sum(Pool& pool, const float* x, std::size_t n) {
  float sum = 0.0f;
  pool.parallel_for(n, [&](std::size_t i) {
    sum += x[i];  // EXPECT-AUDIT: pool-capture
  });
  return sum;
}

float bad_max(Pool& pool, const float* x, std::size_t n) {
  float best = 0.0f;
  pool.parallel_for(n, [&best, x](std::size_t i) {
    if (x[i] > best) best = x[i];  // EXPECT-AUDIT: pool-capture
  });
  return best;
}

int bad_count(Grid& grid) {
  int count = 0;
  grid.for_each_tile([&count](int tile) {
    ++count;  // EXPECT-AUDIT: pool-capture
    (void)tile;
  });
  return count;
}
