// Fixture: keeps the fixture symbols alive for the dead-symbol pass.
#include <cstddef>

struct Pool;
struct Grid;
float bad_sum(Pool& pool, const float* x, std::size_t n);
float bad_max(Pool& pool, const float* x, std::size_t n);
int bad_count(Grid& grid);

int main() {
  return (bad_sum == nullptr) + (bad_max == nullptr) +
         (bad_count == nullptr);
}
