// Fixture: the sanctioned patterns — body-local accumulators, writes to
// disjoint indexed ranges, and an explicit suppression for a loop the
// author knows is single-threaded.
#include <cstddef>

struct Pool {
  template <class F>
  void parallel_for(std::size_t n, F f);
};

void good_fill(Pool& pool, const float* x, float* out, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t i) {
    float v = x[i];       // body-local: fine to mutate
    v += 1.0f;
    out[i] = v;           // disjoint per-index write: the sanctioned shape
  });
}

float good_suppressed(Pool& pool, std::size_t n) {
  float tally = 0.0f;
  pool.parallel_for(n, [&](std::size_t i) {
    (void)i;
    // refit-audit: allow(pool-capture) — pool is pinned to one thread here
    tally = tally + 1.0f;
  });
  return tally;
}
