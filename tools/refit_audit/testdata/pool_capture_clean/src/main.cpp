// Fixture: keeps the fixture symbols alive for the dead-symbol pass.
#include <cstddef>

struct Pool;
void good_fill(Pool& pool, const float* x, float* out, std::size_t n);
float good_suppressed(Pool& pool, std::size_t n);

int main() { return (good_fill == nullptr) + (good_suppressed == nullptr); }
