// Fixture: keeps the fixture classes alive for the dead-symbol pass.
#include "phases.hpp"

int main() {
  Phase* p = nullptr;
  GoodPhase* g = nullptr;
  NotAPhase* n = nullptr;
  return (p == nullptr) + (g == nullptr) + (n == nullptr);
}
