// Fixture: phase-purity does not fire on const pointers, on value
// members, on methods returning store pointers, or on non-Phase classes.
#pragma once

struct RcsSystem;
struct EngineContext;

class Phase {
 public:
  virtual ~Phase() = default;
};

class GoodPhase : public Phase {
 public:
  RcsSystem* borrowed(EngineContext& ctx);  // return/param types are fine

 private:
  const RcsSystem* observed_ = nullptr;  // const view: allowed
  int step_ = 0;
};

class NotAPhase {
 public:
  RcsSystem* sys_ = nullptr;  // mutable, but not a Phase: allowed
};
