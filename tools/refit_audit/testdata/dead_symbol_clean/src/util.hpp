// Fixture: symbols referenced from another translation unit are alive.
#pragma once

class AliveThing {
 public:
  int value() const { return 7; }
};

inline int alive_helper() { return 3; }
