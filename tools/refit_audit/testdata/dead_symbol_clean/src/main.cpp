// Fixture: external references that keep util.hpp's symbols alive.
#include "util.hpp"

int main() {
  AliveThing t;
  return t.value() + alive_helper();
}
