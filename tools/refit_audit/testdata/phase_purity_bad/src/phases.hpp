// Fixture: a transitively Phase-derived class stashing mutable pointers
// and references to store/system types instead of using EngineContext.
#pragma once
#include "phase_base.hpp"

struct RcsSystem;
struct EngineContext;
struct Network;

class BadPhase : public MidPhase {
 public:
  explicit BadPhase(EngineContext& ctx) : ctx_(ctx) {}

 private:
  RcsSystem* sys_ = nullptr;  // EXPECT-AUDIT: phase-purity
  EngineContext& ctx_;        // EXPECT-AUDIT: phase-purity
  Network* net_ = nullptr;    // EXPECT-AUDIT: phase-purity
};
