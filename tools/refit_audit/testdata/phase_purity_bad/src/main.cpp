// Fixture: keeps the fixture classes alive for the dead-symbol pass.
#include "phases.hpp"

int main() {
  Phase* p = nullptr;
  MidPhase* m = nullptr;
  BadPhase* b = nullptr;
  return (p == nullptr) + (m == nullptr) + (b == nullptr);
}
