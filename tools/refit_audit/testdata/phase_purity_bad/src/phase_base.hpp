// Fixture: the engine-style Phase root plus an intermediate base, in a
// separate header so the derivation walk has to cross TU summaries.
#pragma once

class Phase {
 public:
  virtual ~Phase() = default;
};

class MidPhase : public Phase {
 public:
  int generation() const { return gen_; }

 private:
  int gen_ = 0;
};
