// Quickstart: train a small neural network *on simulated RRAM crossbars*
// with the complete fault-tolerant flow, in ~40 lines of user code.
//
//   build/examples/quickstart [--trace-out=FILE] [--metrics-out=FILE]
//       [--timeseries-out=FILE] [--events-out=FILE] [--manual-clock]
//
// What it shows:
//   1. building a dataset and a network whose weight matrices live on
//      crossbar tiles (RcsSystem::factory),
//   2. configuring the fault-tolerant trainer (threshold training +
//      periodic on-line detection + re-mapping),
//   3. reading back the accuracy trace and endurance statistics,
//   4. optionally capturing a Perfetto trace, metrics snapshot,
//      per-iteration timeseries JSONL, and structured event JSONL
//      (docs/observability.md). --manual-clock injects a deterministic
//      clock so the timeseries/events output is byte-identical at any
//      REFIT_THREADS. REFIT_FAST=1 shortens the run for smoke tests.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/ft_trainer.hpp"
#include "core/obs_observer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace refit;

int main(int argc, char** argv) {
  std::string trace_out, metrics_out, timeseries_out, events_out;
  bool manual_clock = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg.rfind("--timeseries-out=", 0) == 0) {
      timeseries_out = arg.substr(17);
    } else if (arg.rfind("--events-out=", 0) == 0) {
      events_out = arg.substr(13);
    } else if (arg == "--manual-clock") {
      manual_clock = true;
    } else {
      std::fprintf(stderr, "ignoring unknown argument '%s'\n", arg.c_str());
    }
  }
  if (manual_clock) {
    // Leaked so instrumented threads may still read it during teardown.
    obs::set_clock(new obs::ManualClock());
  }
  const bool obs_on = !trace_out.empty() || !metrics_out.empty() ||
                      !timeseries_out.empty() || !events_out.empty();
  if (obs_on) obs::MetricsRegistry::instance().set_enabled(true);
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);
  if (!timeseries_out.empty()) {
    obs::TimeseriesRecorder::global().set_enabled(true);
  }
  if (!events_out.empty()) obs::EventLog::global().set_enabled(true);
  const bool fast = std::getenv("REFIT_FAST") != nullptr;

  // A 10-class MNIST-like task, synthesized deterministically.
  SyntheticConfig data_cfg;
  data_cfg.train_size = 2048;
  data_cfg.test_size = 512;
  Rng data_rng(1);
  const Dataset data = make_synthetic_mnist(data_cfg, data_rng);

  // An RCS with 8-level cells, 10 % fabrication faults, limited endurance.
  RcsConfig rcs_cfg;
  rcs_cfg.inject_fabrication = true;
  rcs_cfg.fabrication.fraction = 0.10;
  rcs_cfg.endurance = EnduranceModel::gaussian(2000, 600);
  RcsSystem rcs(rcs_cfg, Rng(42));

  // A 784×100×10 MLP whose weight matrices live on the crossbars.
  Rng net_rng(2);
  Network net = make_mlp({784, 100, 10}, rcs.factory(), net_rng);

  // The full fault-tolerant on-line training flow (paper Fig. 2).
  FtFlowConfig flow;
  flow.iterations = fast ? 250 : 1000;
  flow.batch_size = 8;
  flow.threshold_training = true;   // §5.1: skip writes below 1% of max δw
  flow.detection_enabled = true;    // §4: quiescent-voltage testing…
  flow.detection_period = fast ? 100 : 250;  // …every 250 iterations
  flow.prune.enabled = true;        // §5.2: pruning +
  flow.remap_enabled = true;        // …neuron re-ordering

  FtTrainer trainer(flow);
  ObsObserver obs_observer;
  if (obs_on) trainer.add_observer(&obs_observer);
  const TrainingResult result = trainer.train(net, &rcs, data, Rng(3));

  std::printf("accuracy trace:\n");
  for (std::size_t i = 0; i < result.eval_iterations.size(); ++i) {
    std::printf("  iter %5zu  accuracy %.3f  fault-ratio %.3f\n",
                result.eval_iterations[i], result.eval_accuracy[i],
                result.fault_fraction[i]);
  }
  std::printf("peak accuracy     : %.3f\n", result.peak_accuracy);
  std::printf("device writes     : %llu\n",
              static_cast<unsigned long long>(result.device_writes));
  std::printf("updates suppressed: %.1f%% (threshold training)\n",
              100.0 * result.suppression_ratio());
  std::printf("wear-out faults   : %zu\n", result.wearout_faults);
  for (const PhaseEvent& ph : result.phases) {
    std::printf(
        "detection @%zu: %zu cycles, precision %.2f, recall %.2f, "
        "remap cost %.0f -> %.0f\n",
        ph.iteration, ph.cycles, ph.precision, ph.recall,
        ph.remap_cost_before, ph.remap_cost_after);
  }

  if (obs_on) {
    std::printf("\n%s", obs_observer.timing_table().c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    obs::MetricsRegistry::instance().write_json(os);
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    obs::Tracer::global().write_chrome_json(os);
  }
  if (!timeseries_out.empty()) {
    std::ofstream os(timeseries_out);
    obs::TimeseriesRecorder::global().write_jsonl(os);
  }
  if (!events_out.empty()) {
    std::ofstream os(events_out);
    obs::EventLog::global().write_jsonl(os);
  }
  return 0;
}
