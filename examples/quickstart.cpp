// Quickstart: train a small neural network *on simulated RRAM crossbars*
// with the complete fault-tolerant flow, in ~40 lines of user code.
//
//   build/examples/quickstart
//
// What it shows:
//   1. building a dataset and a network whose weight matrices live on
//      crossbar tiles (RcsSystem::factory),
//   2. configuring the fault-tolerant trainer (threshold training +
//      periodic on-line detection + re-mapping),
//   3. reading back the accuracy trace and endurance statistics.
#include <cstdio>

#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace refit;

int main() {
  // A 10-class MNIST-like task, synthesized deterministically.
  SyntheticConfig data_cfg;
  data_cfg.train_size = 2048;
  data_cfg.test_size = 512;
  Rng data_rng(1);
  const Dataset data = make_synthetic_mnist(data_cfg, data_rng);

  // An RCS with 8-level cells, 10 % fabrication faults, limited endurance.
  RcsConfig rcs_cfg;
  rcs_cfg.inject_fabrication = true;
  rcs_cfg.fabrication.fraction = 0.10;
  rcs_cfg.endurance = EnduranceModel::gaussian(2000, 600);
  RcsSystem rcs(rcs_cfg, Rng(42));

  // A 784×100×10 MLP whose weight matrices live on the crossbars.
  Rng net_rng(2);
  Network net = make_mlp({784, 100, 10}, rcs.factory(), net_rng);

  // The full fault-tolerant on-line training flow (paper Fig. 2).
  FtFlowConfig flow;
  flow.iterations = 1000;
  flow.batch_size = 8;
  flow.threshold_training = true;   // §5.1: skip writes below 1% of max δw
  flow.detection_enabled = true;    // §4: quiescent-voltage testing…
  flow.detection_period = 250;      // …every 250 iterations
  flow.prune.enabled = true;        // §5.2: pruning +
  flow.remap_enabled = true;        // …neuron re-ordering

  FtTrainer trainer(flow);
  const TrainingResult result = trainer.train(net, &rcs, data, Rng(3));

  std::printf("accuracy trace:\n");
  for (std::size_t i = 0; i < result.eval_iterations.size(); ++i) {
    std::printf("  iter %5zu  accuracy %.3f  fault-ratio %.3f\n",
                result.eval_iterations[i], result.eval_accuracy[i],
                result.fault_fraction[i]);
  }
  std::printf("peak accuracy     : %.3f\n", result.peak_accuracy);
  std::printf("device writes     : %llu\n",
              static_cast<unsigned long long>(result.device_writes));
  std::printf("updates suppressed: %.1f%% (threshold training)\n",
              100.0 * result.suppression_ratio());
  std::printf("wear-out faults   : %zu\n", result.wearout_faults);
  for (const PhaseEvent& ph : result.phases) {
    std::printf(
        "detection @%zu: %zu cycles, precision %.2f, recall %.2f, "
        "remap cost %.0f -> %.0f\n",
        ph.iteration, ph.cycles, ph.precision, ph.recall,
        ph.remap_cost_before, ph.remap_cost_after);
  }
  return 0;
}
