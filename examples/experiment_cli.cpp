// experiment_cli — run a custom fault-tolerant training experiment from
// the command line without writing any C++.
//
//   build/examples/experiment_cli [key=value ...]
//
// Keys (defaults in brackets):
//   model=mlp|cnn          [mlp]    784×100×10 MLP or VGG-mini CNN
//   map=entire|fc_only     [entire] which layers live on crossbars
//   iters=N                [1000]   training iterations
//   batch=N                [8]      batch size
//   faults=F               [0.1]    initial stuck-at fraction
//   spatial=uniform|cluster|line [uniform]
//   endurance=E            [0]      mean cell endurance in writes (0 = ∞)
//   threshold=0|1          [1]      threshold training (§5.1)
//   detect=0|1             [0]      on-line detection + re-mapping
//   period=N               [iters/5] detection period
//   prune=S                [0.3]    FC pruning sparsity when detect=1
//   seed=N                 [1]      master seed
//
// Observability flags (docs/observability.md; either one enables the
// obs layer and the end-of-run per-phase timing table):
//   --trace-out=FILE       Chrome trace-event JSON (Perfetto-loadable)
//   --metrics-out=FILE     metrics snapshot; .csv extension → CSV, else JSON
//   --timeseries-out=FILE  per-iteration metric samples, JSONL
//   --events-out=FILE      structured event log, JSONL
//   --manual-clock=1       deterministic injected clock (golden runs)
//
// Example: reproduce the Fig. 7(b) setting in one line:
//   build/examples/experiment_cli model=cnn map=fc_only faults=0.5
//       iters=1200 detect=1
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "core/ft_trainer.hpp"
#include "core/obs_observer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace refit;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "ignoring malformed argument '%s'\n",
                   arg.c_str());
      continue;
    }
    // Long-option spelling: --trace-out=x is stored under key trace_out.
    std::string key = arg.substr(0, eq);
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    std::replace(key.begin(), key.end(), '-', '_');
    kv[key] = arg.substr(eq + 1);
  }
  return kv;
}

std::string get(const std::map<std::string, std::string>& kv,
                const std::string& key, const std::string& dflt) {
  const auto it = kv.find(key);
  return it == kv.end() ? dflt : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto kv = parse_args(argc, argv);
  const std::string model = get(kv, "model", "mlp");
  const std::string map = get(kv, "map", "entire");
  const auto iters =
      static_cast<std::size_t>(std::stoll(get(kv, "iters", "1000")));
  const auto batch =
      static_cast<std::size_t>(std::stoll(get(kv, "batch", "8")));
  const double faults = std::stod(get(kv, "faults", "0.1"));
  const std::string spatial = get(kv, "spatial", "uniform");
  const double endurance = std::stod(get(kv, "endurance", "0"));
  const bool threshold = get(kv, "threshold", "1") == "1";
  const bool detect = get(kv, "detect", "0") == "1";
  const auto period = static_cast<std::size_t>(
      std::stoll(get(kv, "period", std::to_string(iters / 5))));
  const double prune = std::stod(get(kv, "prune", "0.3"));
  const auto seed =
      static_cast<std::uint64_t>(std::stoll(get(kv, "seed", "1")));
  const std::string trace_out = get(kv, "trace_out", "");
  const std::string metrics_out = get(kv, "metrics_out", "");
  const std::string timeseries_out = get(kv, "timeseries_out", "");
  const std::string events_out = get(kv, "events_out", "");
  if (get(kv, "manual_clock", "") == "1") {
    // Leaked so instrumented threads may still read it during teardown.
    obs::set_clock(new obs::ManualClock());
  }
  const bool obs_on = !trace_out.empty() || !metrics_out.empty() ||
                      !timeseries_out.empty() || !events_out.empty();
  if (obs_on) obs::MetricsRegistry::instance().set_enabled(true);
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);
  if (!timeseries_out.empty()) {
    obs::TimeseriesRecorder::global().set_enabled(true);
  }
  if (!events_out.empty()) obs::EventLog::global().set_enabled(true);

  // Dataset.
  SyntheticConfig dc;
  dc.train_size = 2048;
  dc.test_size = 512;
  Rng drng(seed);
  const Dataset data = model == "cnn" ? make_synthetic_cifar(dc, drng, 16)
                                      : make_synthetic_mnist(dc, drng);

  // Chip.
  RcsConfig rc;
  rc.inject_fabrication = faults > 0.0;
  rc.fabrication.fraction = faults;
  if (spatial == "cluster")
    rc.fabrication.spatial = SpatialDistribution::kClustered;
  else if (spatial == "line")
    rc.fabrication.spatial = SpatialDistribution::kLineDefects;
  if (endurance > 0.0)
    rc.endurance = EnduranceModel::gaussian(endurance, 0.3 * endurance);
  RcsSystem rcs(rc, Rng(seed + 1));

  // Network.
  Rng nrng(seed + 2);
  Network net =
      model == "cnn"
          ? make_vgg_mini(VggMiniConfig{},
                          map == "fc_only" ? software_store_factory()
                                           : rcs.factory(),
                          rcs.factory(), nrng)
          : make_mlp({784, 100, 10}, rcs.factory(), nrng);

  // Flow.
  FtFlowConfig flow;
  flow.iterations = iters;
  flow.batch_size = batch;
  flow.lr = LrSchedule{model == "cnn" ? 0.03 : 0.05, 0.5, iters / 3, 1e-4};
  flow.eval_period = std::max<std::size_t>(1, iters / 10);
  flow.threshold_training = threshold;
  if (detect) {
    flow.detection_enabled = true;
    flow.detection_period = period;
    flow.prune.enabled = prune > 0.0;
    flow.prune.fc_sparsity = prune;
    flow.prune.conv_sparsity = 0.0;
    flow.remap_enabled = true;
    flow.remap.algorithm = RemapAlgorithm::kHungarian;
  }

  std::printf("model=%s map=%s iters=%zu faults=%.0f%%(%s) endurance=%s "
              "threshold=%d detect=%d\n\n",
              model.c_str(), map.c_str(), iters, faults * 100,
              spatial.c_str(),
              endurance > 0 ? get(kv, "endurance", "0").c_str() : "inf",
              threshold ? 1 : 0, detect ? 1 : 0);

  FtTrainer trainer(flow);
  ObsObserver obs_observer;
  if (obs_on) trainer.add_observer(&obs_observer);
  const TrainingResult r = trainer.train(net, &rcs, data, Rng(seed + 3));

  for (std::size_t i = 0; i < r.eval_iterations.size(); ++i) {
    std::printf("iter %6zu  accuracy %.3f  fault-ratio %.3f\n",
                r.eval_iterations[i], r.eval_accuracy[i],
                r.fault_fraction[i]);
  }
  std::printf("\npeak %.3f | final %.3f | writes %llu | suppressed %.1f%% | "
              "wearout faults %zu\n",
              r.peak_accuracy, r.final_accuracy,
              static_cast<unsigned long long>(r.device_writes),
              100.0 * r.suppression_ratio(), r.wearout_faults);
  for (const auto& ph : r.phases) {
    std::printf("phase @%zu: precision %.2f recall %.2f cycles %zu\n",
                ph.iteration, ph.precision, ph.recall, ph.cycles);
  }

  if (obs_on) {
    std::printf("\n%s", obs_observer.timing_table().c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (metrics_out.size() >= 4 &&
        metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0) {
      obs::MetricsRegistry::instance().write_csv(os);
    } else {
      obs::MetricsRegistry::instance().write_json(os);
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    obs::Tracer::global().write_chrome_json(os);
    std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!timeseries_out.empty()) {
    std::ofstream os(timeseries_out);
    obs::TimeseriesRecorder::global().write_jsonl(os);
    std::printf("timeseries written to %s\n", timeseries_out.c_str());
  }
  if (!events_out.empty()) {
    std::ofstream os(events_out);
    obs::EventLog::global().write_jsonl(os);
    std::printf("event log written to %s\n", events_out.c_str());
  }
  return 0;
}
