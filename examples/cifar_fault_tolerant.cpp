// Example: the FC-only fault-tolerant scenario of Fig. 7(b).
//
// The Conv layers of a VGG-style CNN stay in software while its three FC
// layers live on an RCS that carries ~50 % initial hard faults (a chip
// that has already been trained many times). Compares plain on-line
// training against the complete fault-tolerant flow, printing the
// detection quality and re-mapping cost of every phase.
//
//   build/examples/cifar_fault_tolerant [iterations]
#include <cstdio>
#include <cstdlib>

#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace refit;

namespace {

RcsConfig worn_chip() {
  RcsConfig cfg;
  cfg.inject_fabrication = true;
  cfg.fabrication.fraction = 0.50;
  cfg.endurance = EnduranceModel::gaussian(1e6, 3e5);  // not the bottleneck
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t iters =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1200;

  SyntheticConfig data_cfg;
  data_cfg.train_size = 2048;
  data_cfg.test_size = 512;
  Rng data_rng(1);
  const Dataset data = make_synthetic_cifar(data_cfg, data_rng, 16);
  const VggMiniConfig vc;  // 4 Conv + 3 FC

  FtFlowConfig base;
  base.iterations = iters;
  base.batch_size = 8;
  base.lr = LrSchedule{0.03, 0.5, iters / 3, 1e-4};
  base.eval_period = iters / 10;

  // Plain on-line training on the worn chip.
  double original_peak = 0.0;
  {
    Rng rng(2);
    RcsSystem rcs(worn_chip(), Rng(42));
    Network net = make_vgg_mini(vc, software_store_factory(), rcs.factory(),
                                rng);
    FtFlowConfig cfg = base;
    cfg.threshold_training = false;
    original_peak =
        FtTrainer(cfg).train(net, &rcs, data, Rng(3)).peak_accuracy;
  }

  // The complete fault-tolerant flow.
  Rng rng(2);
  RcsSystem rcs(worn_chip(), Rng(42));
  Network net = make_vgg_mini(vc, software_store_factory(), rcs.factory(),
                              rng);
  FtFlowConfig cfg = base;
  cfg.threshold_training = true;
  cfg.detection_enabled = true;
  cfg.detection_period = iters / 6;
  cfg.prune.enabled = true;
  cfg.prune.fc_sparsity = 0.3;
  cfg.prune.conv_sparsity = 0.0;
  cfg.remap_enabled = true;
  cfg.remap.algorithm = RemapAlgorithm::kHungarian;
  const TrainingResult ft = FtTrainer(cfg).train(net, &rcs, data, Rng(3));

  std::printf("FC-only VGG-mini on a chip with 50%% initial hard faults\n");
  std::printf("  original on-line training peak : %.3f\n", original_peak);
  std::printf("  fault-tolerant flow peak       : %.3f\n\n",
              ft.peak_accuracy);
  std::printf("detection/re-mapping phases:\n");
  for (const PhaseEvent& ph : ft.phases) {
    std::printf(
        "  @%5zu  cycles %5zu  precision %.2f  recall %.2f  "
        "Dist(P,F) %.0f -> %.0f\n",
        ph.iteration, ph.cycles, ph.precision, ph.recall,
        ph.remap_cost_before, ph.remap_cost_after);
  }
  std::printf("\naccuracy trace (fault-tolerant flow):\n");
  for (std::size_t i = 0; i < ft.eval_iterations.size(); ++i) {
    std::printf("  iter %5zu  accuracy %.3f\n", ft.eval_iterations[i],
                ft.eval_accuracy[i]);
  }
  return 0;
}
