// Example: interactive-style playground for the on-line fault detector.
//
// Builds one crossbar, injects a chosen fault pattern, runs the
// quiescent-voltage comparison test, and renders the true vs predicted
// fault maps as ASCII art (for sizes ≤ 64) together with the detection
// metrics. Useful for building intuition about test size, selected-cell
// testing, and the modulo comparator.
//
//   build/examples/detector_playground [size] [fault%] [uniform|cluster|line]
//                                      [test_size] [all|selected]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "detect/quiescent_detector.hpp"
#include "rram/faults.hpp"

using namespace refit;

namespace {

void render(const Crossbar& xb, const FaultMatrix& predicted) {
  if (xb.rows() > 64 || xb.cols() > 64) {
    std::printf("(map rendering skipped for crossbars larger than 64x64)\n");
    return;
  }
  std::printf("legend: '.' healthy  'X' hit (true+predicted)  "
              "'o' missed fault  '!' false alarm\n");
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      const bool actual = xb.is_stuck(r, c);
      const bool pred = predicted.faulty(r, c);
      char ch = '.';
      if (actual && pred) ch = 'X';
      if (actual && !pred) ch = 'o';
      if (!actual && pred) ch = '!';
      std::putchar(ch);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 48;
  const double fault_pct = argc > 2 ? std::atof(argv[2]) : 10.0;
  const char* dist = argc > 3 ? argv[3] : "cluster";
  const std::size_t test_size =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 8;
  const bool selected = argc > 5 ? std::strcmp(argv[5], "all") != 0 : true;

  CrossbarConfig cc;
  cc.rows = cc.cols = n;
  cc.levels = 8;
  cc.write_noise_sigma = 0.01;
  Crossbar xb(cc, EnduranceModel::unlimited(), Rng(7));
  Rng rng(11);
  randomize_crossbar_content(xb, 0.3, 0.2, rng);

  FaultInjectionConfig fc;
  fc.fraction = fault_pct / 100.0;
  fc.spatial = SpatialDistribution::kUniform;
  if (std::strcmp(dist, "cluster") == 0)
    fc.spatial = SpatialDistribution::kClustered;
  if (std::strcmp(dist, "line") == 0)
    fc.spatial = SpatialDistribution::kLineDefects;
  inject_fabrication_faults(xb, fc, rng);

  DetectorConfig dc;
  dc.test_rows_per_cycle = test_size;
  dc.selected_cells_only = selected;
  const QuiescentVoltageDetector detector(dc);
  const DetectionOutcome out = detector.detect(xb);
  const ConfusionCounts m = evaluate_detection(xb, out.predicted);

  std::printf("crossbar %zux%zu, %.1f%% faults (%s), test size %zu, "
              "%s-cell testing\n\n",
              n, n, fault_pct, dist, test_size,
              selected ? "selected" : "all");
  render(xb, out.predicted);
  std::printf("\ntest cycles : %zu   (T = ceil(Er/Tr) + ceil(Ec/Tc) per "
              "fault-type pass)\n", out.cycles);
  std::printf("cells pulsed: %zu   device writes: %llu\n", out.cells_tested,
              static_cast<unsigned long long>(out.device_writes));
  std::printf("precision   : %.3f   recall: %.3f   (TP %llu  FP %llu  "
              "FN %llu)\n",
              m.precision(), m.recall(),
              static_cast<unsigned long long>(m.tp),
              static_cast<unsigned long long>(m.fp),
              static_cast<unsigned long long>(m.fn));
  return 0;
}
