// Example: the endurance story on the paper's MLP benchmark
// (784×100×10, MNIST-like data).
//
// Trains the same network twice on low-endurance crossbars — once with
// plain on-line SGD (every δw is a device write) and once with threshold
// training (§5.1) — and reports how wear-out faults accumulate and what
// that does to accuracy. This is the per-model view behind Fig. 7(a).
//
//   build/examples/mnist_online_training [iterations]
#include <cstdio>
#include <cstdlib>

#include "core/ft_trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

using namespace refit;

namespace {

TrainingResult run(bool threshold, const Dataset& data, std::size_t iters) {
  RcsConfig rcs_cfg;
  rcs_cfg.inject_fabrication = true;
  rcs_cfg.fabrication.fraction = 0.05;
  // Low endurance: mean budget ≈ 0.8 writes/cell per training run.
  rcs_cfg.endurance = EnduranceModel::gaussian(
      0.8 * static_cast<double>(iters), 0.24 * static_cast<double>(iters));
  RcsSystem rcs(rcs_cfg, Rng(42));

  Rng net_rng(2);
  Network net = make_mlp({784, 100, 10}, rcs.factory(), net_rng);

  FtFlowConfig flow;
  flow.iterations = iters;
  flow.batch_size = 8;
  flow.eval_period = iters / 10;
  flow.threshold_training = threshold;

  FtTrainer trainer(flow);
  TrainingResult res = trainer.train(net, &rcs, data, Rng(3));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t iters =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1500;

  SyntheticConfig data_cfg;
  data_cfg.train_size = 2048;
  data_cfg.test_size = 512;
  Rng data_rng(1);
  const Dataset data = make_synthetic_mnist(data_cfg, data_rng);

  std::printf("training the 784x100x10 MLP for %zu iterations on "
              "low-endurance RRAM\n\n", iters);

  const TrainingResult plain = run(/*threshold=*/false, data, iters);
  const TrainingResult thresh = run(/*threshold=*/true, data, iters);

  std::printf("%-28s %14s %14s\n", "", "original", "threshold");
  std::printf("%-28s %14.3f %14.3f\n", "peak accuracy",
              plain.peak_accuracy, thresh.peak_accuracy);
  std::printf("%-28s %14.3f %14.3f\n", "final accuracy",
              plain.final_accuracy, thresh.final_accuracy);
  std::printf("%-28s %14llu %14llu\n", "device writes",
              static_cast<unsigned long long>(plain.device_writes),
              static_cast<unsigned long long>(thresh.device_writes));
  std::printf("%-28s %14zu %14zu\n", "wear-out faults",
              plain.wearout_faults, thresh.wearout_faults);
  std::printf("%-28s %14.3f %14.3f\n", "final fault fraction",
              plain.final_fault_fraction, thresh.final_fault_fraction);
  std::printf("%-28s %14.1f%% %13.1f%%\n", "updates suppressed",
              100.0 * plain.suppression_ratio(),
              100.0 * thresh.suppression_ratio());

  const double reduction =
      static_cast<double>(plain.updates_written) /
      static_cast<double>(std::max<std::uint64_t>(1, thresh.updates_written));
  std::printf("\nthreshold training issued %.1fx fewer update writes — the "
              "paper reports ~15x average lifetime on VGG-scale networks\n",
              reduction);
  return 0;
}
